"""The single-instance fuzzing engine.

One engine drives one target session: per iteration it samples a path
through the state model, generates (and usually mutates) a message for
every send action, pushes it through a transport, and observes branch
coverage and faults. Messages that discovered new branches join a seed
corpus that later iterations replay and re-mutate — the classic
generation-plus-feedback loop both Peach-parallel and SPFuzz rely on.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import List, Optional

from repro import fastpath, fastrand
from repro.coverage.collector import CoverageCollector
from repro.errors import TargetHang
from repro.fuzzing.datamodel import Message
from repro.fuzzing.statemodel import StateModel
from repro.fuzzing.strategies import MutationStrategy, RandomFieldStrategy
from repro.targets.base import ProtocolTarget
from repro.targets.faults import SanitizerFault
from repro.telemetry import NULL_TELEMETRY


class DirectTransport:
    """Feeds packets straight into a target instance."""

    def __init__(self, target: ProtocolTarget):
        self.target = target

    def send(self, payload: bytes) -> Optional[bytes]:
        return self.target.handle_packet(payload)

    def reset(self) -> None:
        self.target.reset_session()


class ChannelTransport:
    """Feeds packets through a netns channel into a target instance.

    Models the paper's isolated-namespace data plane: the engine writes
    to the client side, the pump drains the server side into the target
    and routes responses back.
    """

    def __init__(self, channel, target: ProtocolTarget):
        self.channel = channel
        self.target = target

    def send(self, payload: bytes) -> Optional[bytes]:
        self.channel.send_to_server(payload)
        response: Optional[bytes] = None
        while True:
            pending = self.channel.server.recv()
            if pending is None:
                break
            reply = self.target.handle_packet(pending)
            if reply:
                self.channel.send_to_client(reply)
                response = self.channel.client.recv()
        return response

    def reset(self) -> None:
        self.target.reset_session()


class BatchedChannelTransport(ChannelTransport):
    """The fast-path transport: drains the server inbox in batches.

    :class:`ChannelTransport` pays one ``recv`` round (deque probe,
    ``None`` sentinel, loop re-entry) per pending datagram plus a final
    empty probe per send.  This variant pulls everything pending in one
    :meth:`~repro.netns.channel.Endpoint.drain` and walks the batch as
    a plain list, re-draining until the inbox stays empty — the same
    FIFO order, byte counters and closed-endpoint errors, observed by
    the differential tests in ``tests/netns/test_channel_batch.py``.

    If the target faults mid-batch, the unprocessed remainder is pushed
    back to the *front* of the inbox, leaving exactly the datagrams the
    slow path would have left queued.
    """

    def send(self, payload: bytes) -> Optional[bytes]:
        channel = self.channel
        channel.send_to_server(payload)
        server = channel.server
        target = self.target
        response: Optional[bytes] = None
        while True:
            batch = server.drain()
            if not batch:
                return response
            done = 0
            try:
                for pending in batch:
                    done += 1
                    reply = target.handle_packet(pending)
                    if reply:
                        channel.send_to_client(reply)
                        response = channel.client.recv()
            except BaseException:
                server.requeue(batch[done:])
                raise


@dataclass
class IterationResult:
    """Outcome of one fuzzing iteration."""

    new_sites: frozenset
    fault: Optional[SanitizerFault] = None
    path: List[str] = field(default_factory=list)
    messages_sent: int = 0
    #: Non-empty responses observed (zero while a target is silently dead).
    responses: int = 0
    #: The target stopped responding mid-send (chaos hang / send timeout).
    hung: bool = False

    @property
    def found_new_coverage(self) -> bool:
        return bool(self.new_sites)


class FuzzEngine:
    """Drives fuzzing iterations for one instance.

    Args:
        state_model: The protocol's state model (shared "Pit file").
        transport: Where generated packets go.
        collector: The target's coverage collector (for new-branch
            feedback).
        strategy: Mutation strategy applied to generated messages.
        seed: RNG seed; distinct per parallel instance.
        replay_probability: Chance a send is based on a corpus seed
            instead of a freshly built default message.
        corpus_limit: Maximum retained seeds (FIFO eviction).
        allowed_paths: Optional whitelist of state paths (tuples); used
            by SPFuzz to restrict an instance to its assigned paths.
        telemetry: Optional :class:`repro.telemetry.Telemetry`; defaults
            to the shared no-op instance (near-zero cost).
        labels: Metric labels attached to this engine's series (the
            parallel modes pass ``instance=<index>``).
        outbox_limit: Safety ceiling on queued-but-unsynced seeds; on
            overflow the oldest pending seed is dropped and counted in
            ``sync.seeds_dropped`` (zero on healthy campaigns).
    """

    def __init__(
        self,
        state_model: StateModel,
        transport,
        collector: CoverageCollector,
        strategy: Optional[MutationStrategy] = None,
        seed: int = 0,
        replay_probability: float = 0.35,
        corpus_limit: int = 256,
        allowed_paths: Optional[List[tuple]] = None,
        session_length: int = 8,
        telemetry=None,
        labels: Optional[dict] = None,
        outbox_limit: int = 4096,
    ):
        self.state_model = state_model
        self.transport = transport
        self.collector = collector
        self.strategy = strategy or RandomFieldStrategy()
        self.rng = random.Random(seed)
        self.replay_probability = replay_probability
        self.corpus_limit = corpus_limit
        self.allowed_paths = list(allowed_paths) if allowed_paths else None
        if session_length < 1:
            raise ValueError("session_length must be >= 1")
        if outbox_limit < 1:
            raise ValueError("outbox_limit must be >= 1")
        self.session_length = session_length
        #: Sampled once at construction (and pickled), so a checkpointed
        #: engine resumes on the path it was built with.
        self._fast = fastpath.enabled()
        #: state name -> data-model names of its send actions, in order
        #: (the action loop skips non-send actions with no other effect,
        #: so the fast iteration walks this instead). Lazily built.
        self._send_models = {}
        self.corpus: List[Message] = []
        #: model name -> corpus entries for that model, in corpus order.
        #: Maintained alongside ``corpus`` so replay selection skips the
        #: per-iteration linear scan; eviction pops both in lockstep.
        self._corpus_by_model = {}
        #: Locally discovered seeds awaiting cross-instance broadcast;
        #: drained by :class:`repro.parallel.sync.SeedSynchronizer`.
        self.sync_outbox: List[Message] = []
        self.outbox_limit = outbox_limit
        self.sync_seeds_dropped = 0
        self.iterations = 0
        self.total_messages = 0
        self.faults_seen = 0
        self.hangs_seen = 0
        tele = telemetry or NULL_TELEMETRY
        labels = dict(labels or {})
        self.telemetry = tele
        #: Whether counter bumps observe anything. The fast iteration
        #: skips the ~10 no-op counter calls per iteration when running
        #: without telemetry (benchmarks, unit tests); campaigns with a
        #: live sink count exactly as the slow loop does.
        self._tele_live = tele is not NULL_TELEMETRY
        self._c_execs = tele.counter("engine.execs", **labels)
        self._c_messages = tele.counter("engine.messages", **labels)
        self._c_responses = tele.counter("engine.responses", **labels)
        self._c_new_cov = tele.counter("engine.new_coverage_events", **labels)
        self._c_new_sites = tele.counter("engine.new_sites", **labels)
        self._c_faults = tele.counter("engine.faults", **labels)
        self._c_hangs = tele.counter("engine.hangs", **labels)
        self._c_seeds_local = tele.counter("engine.seeds_discovered", **labels)
        self._c_seeds_received = tele.counter("engine.seeds_received", **labels)
        self._c_strategy = tele.counter(
            "engine.strategy_picks",
            strategy=type(self.strategy).__name__, **labels,
        )
        self._c_sync_dropped = tele.counter("sync.seeds_dropped", **labels)
        self._g_corpus = tele.gauge("engine.corpus_size", **labels)

    # -- corpus ------------------------------------------------------------

    def _retain(self, message: Message) -> None:
        retained = message.copy()
        self.corpus.append(retained)
        self._corpus_by_model.setdefault(retained.model.name, []).append(retained)
        if len(self.corpus) > self.corpus_limit:
            evicted = self.corpus.pop(0)
            # The globally oldest seed is the oldest of its bucket too.
            del self._corpus_by_model[evicted.model.name][0]
        self._g_corpus.set(len(self.corpus))

    def add_seed(self, message: Message) -> None:
        """Add a locally discovered (or externally injected) seed.

        The seed joins the replay corpus *and* the sync outbox, so the
        synchronizer will eventually broadcast it to the other instances
        exactly once. Seeds arriving *from* synchronisation must go
        through :meth:`receive_seed` instead, or they would be
        rebroadcast forever.
        """
        self._retain(message)
        self.sync_outbox.append(message.copy())
        if len(self.sync_outbox) > self.outbox_limit:
            self.sync_outbox.pop(0)
            self.sync_seeds_dropped += 1
            self._c_sync_dropped.inc()
        self._c_seeds_local.inc()

    def receive_seed(self, message: Message) -> None:
        """Adopt a seed broadcast by another instance (corpus only —
        received seeds are never queued for rebroadcast)."""
        self._retain(message)
        self._c_seeds_received.inc()

    def _base_message(self, model_name: str) -> Message:
        model = self.state_model.data_model(model_name)
        if self.corpus and self.rng.random() < self.replay_probability:
            if self._fast:
                candidates = self._corpus_by_model.get(model_name)
                if candidates:
                    return fastrand.choice(self.rng, candidates).copy()
            else:
                candidates = [m for m in self.corpus if m.model.name == model_name]
                if candidates:
                    return self.rng.choice(candidates).copy()
        return model.build(self.rng)

    def _choose_path(self) -> List[str]:
        if self.allowed_paths:
            if self._fast:
                return list(fastrand.choice(self.rng, self.allowed_paths))
            return list(self.rng.choice(self.allowed_paths))
        return self.state_model.walk(self.rng)

    # -- main loop -----------------------------------------------------------

    def run_iteration(self) -> IterationResult:
        """Execute one iteration: walk the state model, send messages."""
        if self._fast:
            return self._run_iteration_fast()
        if self.iterations % self.session_length == 0:
            # Fresh connection every few test cases, as a network fuzzer
            # reconnects between runs.
            self.transport.reset()
        self.collector.start_run()
        path = self._choose_path()
        fault: Optional[SanitizerFault] = None
        hung = False
        sent_messages: List[Message] = []
        messages_sent = 0
        responses = 0
        for state_name in path:
            state = self.state_model.state(state_name)
            for action in state.actions:
                if action.kind != "send":
                    continue
                base = self._base_message(action.data_model)
                message = self.strategy.apply(base, self.rng)
                self._c_strategy.inc()
                payload = message.encode()
                sent_messages.append(message)
                messages_sent += 1
                try:
                    reply = self.transport.send(payload)
                except SanitizerFault as caught:
                    fault = caught
                    break
                except TargetHang:
                    hung = True
                    break
                if reply:
                    responses += 1
            if fault or hung:
                break
        new_sites = frozenset(self.collector.run_new)
        if new_sites and not fault and not hung:
            self._c_new_cov.inc()
            self._c_new_sites.inc(len(new_sites))
            for message in sent_messages:
                self.add_seed(message)
        if fault:
            self.faults_seen += 1
            self._c_faults.inc()
            self.transport.reset()
        if hung:
            self.hangs_seen += 1
            self._c_hangs.inc()
            self.transport.reset()
        self.iterations += 1
        self.total_messages += messages_sent
        self._c_execs.inc()
        self._c_messages.inc(messages_sent)
        self._c_responses.inc(responses)
        return IterationResult(
            new_sites=new_sites,
            fault=fault,
            path=path,
            messages_sent=messages_sent,
            responses=responses,
            hung=hung,
        )

    def _run_iteration_fast(self) -> IterationResult:
        """The fast-path twin of :meth:`run_iteration`.

        Identical control flow and RNG consumption; the deltas are pure
        mechanics — attribute lookups hoisted out of the send loop, the
        per-state send actions pre-filtered into :attr:`_send_models`
        (the slow loop's ``continue`` on recv actions has no other
        effect), and no-op telemetry bumps skipped when no sink is
        attached. The golden-parity harness diffs full campaign exports
        against the slow loop byte for byte.
        """
        transport = self.transport
        if self.iterations % self.session_length == 0:
            transport.reset()
        collector = self.collector
        collector.start_run()
        path = self._choose_path()
        fault: Optional[SanitizerFault] = None
        hung = False
        sent_messages: List[Message] = []
        messages_sent = 0
        responses = 0
        rng = self.rng
        base_message = self._base_message
        strategy_apply = self.strategy.apply
        send = transport.send
        send_models = self._send_models
        sent_append = sent_messages.append
        live = self._tele_live
        strategy_inc = self._c_strategy.inc if live else None
        for state_name in path:
            models = send_models.get(state_name)
            if models is None:
                models = [
                    action.data_model
                    for action in self.state_model.state(state_name).actions
                    if action.kind == "send"
                ]
                send_models[state_name] = models
            for model_name in models:
                base = base_message(model_name)
                message = strategy_apply(base, rng)
                if live:
                    strategy_inc()
                payload = message.encode()
                sent_append(message)
                messages_sent += 1
                try:
                    reply = send(payload)
                except SanitizerFault as caught:
                    fault = caught
                    break
                except TargetHang:
                    hung = True
                    break
                if reply:
                    responses += 1
            if fault or hung:
                break
        new_sites = frozenset(collector.run_new)
        if new_sites and not fault and not hung:
            if live:
                self._c_new_cov.inc()
                self._c_new_sites.inc(len(new_sites))
            for message in sent_messages:
                self.add_seed(message)
        if fault:
            self.faults_seen += 1
            self._c_faults.inc()
            transport.reset()
        if hung:
            self.hangs_seen += 1
            self._c_hangs.inc()
            transport.reset()
        self.iterations += 1
        self.total_messages += messages_sent
        if live:
            self._c_execs.inc()
            self._c_messages.inc(messages_sent)
            self._c_responses.inc(responses)
        return IterationResult(
            new_sites=new_sites,
            fault=fault,
            path=path,
            messages_sent=messages_sent,
            responses=responses,
            hung=hung,
        )
