"""State models: interaction sequences and transitions (§II-B).

A :class:`StateModel` is a directed graph of :class:`State` nodes. Each
state carries ordered :class:`Action` items (send a data model, expect a
reply) and weighted transitions to successor states. The engine walks the
model per iteration; SPFuzz partitions its simple paths across instances.
"""

from __future__ import annotations

import random
from bisect import bisect
from dataclasses import dataclass, field
from itertools import accumulate
from typing import Dict, List, Optional, Sequence, Tuple

from repro import fastpath
from repro.errors import FuzzingError
from repro.fuzzing.datamodel import DataModel


@dataclass(frozen=True)
class Action:
    """One step inside a state.

    Attributes:
        kind: ``"send"`` (emit a data model) or ``"recv"`` (drain one
            response from the target).
        data_model: The data model name for send actions.
    """

    kind: str
    data_model: Optional[str] = None

    def __post_init__(self):
        if self.kind not in ("send", "recv"):
            raise FuzzingError("unknown action kind %r" % self.kind)
        if self.kind == "send" and not self.data_model:
            raise FuzzingError("send actions require a data model name")


@dataclass
class State:
    """A protocol state with its actions and outgoing transitions."""

    name: str
    actions: List[Action] = field(default_factory=list)
    transitions: List[Tuple[str, float]] = field(default_factory=list)

    def add_transition(self, target: str, weight: float = 1.0) -> "State":
        if weight <= 0:
            raise FuzzingError("transition weight must be positive")
        self.transitions.append((target, weight))
        return self


class StateModel:
    """The state graph plus the data model registry it references."""

    def __init__(self, name: str, initial: str,
                 states: Sequence[State], data_models: Sequence[DataModel]):
        self.name = name
        self._states: Dict[str, State] = {}
        for state in states:
            if state.name in self._states:
                raise FuzzingError("duplicate state %r" % state.name)
            self._states[state.name] = state
        if initial not in self._states:
            raise FuzzingError("initial state %r undefined" % initial)
        self.initial = initial
        self._data_models: Dict[str, DataModel] = {}
        for model in data_models:
            if model.name in self._data_models:
                raise FuzzingError("duplicate data model %r" % model.name)
            self._data_models[model.name] = model
        #: state name -> (targets, cum_weights, total, hi) for the
        #: fast transition draw in :meth:`walk` (built lazily; plain
        #: data, so it checkpoints along with the model).
        self._walk_cache: Dict[str, tuple] = {}
        self._validate()

    def _validate(self) -> None:
        for state in self._states.values():
            for target, _ in state.transitions:
                if target not in self._states:
                    raise FuzzingError(
                        "state %r transitions to unknown state %r" % (state.name, target)
                    )
            for action in state.actions:
                if action.kind == "send" and action.data_model not in self._data_models:
                    raise FuzzingError(
                        "state %r sends unknown data model %r"
                        % (state.name, action.data_model)
                    )

    def state(self, name: str) -> State:
        try:
            return self._states[name]
        except KeyError:
            raise FuzzingError("unknown state %r" % name)

    def data_model(self, name: str) -> DataModel:
        try:
            return self._data_models[name]
        except KeyError:
            raise FuzzingError("unknown data model %r" % name)

    def states(self) -> List[str]:
        return list(self._states)

    def data_models(self) -> List[DataModel]:
        return list(self._data_models.values())

    def walk(self, rng: random.Random, max_states: int = 8) -> List[str]:
        """Sample a state path from the initial state.

        Transitions are chosen proportionally to their weights; the walk
        ends at a state without transitions or after ``max_states``.
        """
        path = [self.initial]
        current = self._states[self.initial]
        if type(rng) is random.Random and fastpath.enabled():
            # ``Random.choices(pop, weights=w, k=1)`` re-accumulates the
            # weights and re-derives its bisect bounds every call; its
            # draw is ``pop[bisect(cum, random() * total, 0, hi)]`` on
            # every supported interpreter.  Caching (cum, total, hi)
            # per state consumes the identical random() value and picks
            # the identical successor, one attribute call per hop.
            cache = self._walk_cache
            states = self._states
            rand = rng.random
            while current.transitions and len(path) < max_states:
                entry = cache.get(current.name)
                if entry is None:
                    targets = [t for t, _ in current.transitions]
                    cum = list(accumulate(w for _, w in current.transitions))
                    entry = (targets, cum, cum[-1] + 0.0, len(targets) - 1)
                    cache[current.name] = entry
                targets, cum, total, hi = entry
                choice = targets[bisect(cum, rand() * total, 0, hi)]
                path.append(choice)
                current = states[choice]
            return path
        while current.transitions and len(path) < max_states:
            targets = [t for t, _ in current.transitions]
            weights = [w for _, w in current.transitions]
            choice = rng.choices(targets, weights=weights, k=1)[0]
            path.append(choice)
            current = self._states[choice]
        return path

    def simple_paths(self, max_length: int = 8) -> List[Tuple[str, ...]]:
        """Enumerate loop-free paths from the initial state.

        The SPFuzz baseline partitions these paths across its parallel
        instances. Paths end at sink states or at ``max_length``.
        """
        paths: List[Tuple[str, ...]] = []

        def explore(current: str, trail: Tuple[str, ...]) -> None:
            state = self._states[current]
            successors = [t for t, _ in state.transitions if t not in trail]
            if not successors or len(trail) >= max_length:
                paths.append(trail)
                return
            for target in successors:
                explore(target, trail + (target,))

        explore(self.initial, (self.initial,))
        # Deterministic order: longest (deepest) paths first, then lexical.
        paths.sort(key=lambda p: (-len(p), p))
        return paths

    def __repr__(self) -> str:
        return "StateModel(%r, %d states, %d data models)" % (
            self.name,
            len(self._states),
            len(self._data_models),
        )
