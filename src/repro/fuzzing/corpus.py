"""Seed corpus serialisation: persist interesting messages across runs.

Parallel fuzzers conventionally persist their seed corpora (AFL's queue
directory) so later campaigns resume from prior discoveries. Messages
serialise structurally — model name, per-path values, choice selections —
so reloaded seeds stay mutable, unlike raw byte dumps.
"""

from __future__ import annotations

import base64
import json
from typing import Any, Dict, List

from repro.errors import FuzzingError
from repro.fuzzing.datamodel import Message
from repro.fuzzing.statemodel import StateModel


def _encode_value(value: Any) -> Dict[str, Any]:
    if isinstance(value, bytes):
        return {"t": "bytes", "v": base64.b64encode(value).decode("ascii")}
    if isinstance(value, bool):
        return {"t": "bool", "v": value}
    if isinstance(value, int):
        return {"t": "int", "v": value}
    if isinstance(value, float):
        return {"t": "float", "v": value}
    if isinstance(value, str):
        return {"t": "str", "v": value}
    if value is None:
        return {"t": "none", "v": None}
    raise FuzzingError("unserialisable corpus value %r" % (value,))


def _decode_value(encoded: Dict[str, Any]) -> Any:
    kind = encoded["t"]
    if kind == "bytes":
        return base64.b64decode(encoded["v"])
    if kind == "none":
        return None
    return encoded["v"]


def message_to_dict(message: Message) -> Dict[str, Any]:
    """Serialise one message structurally."""
    return {
        "model": message.model.name,
        "values": {path: _encode_value(value)
                   for path, value in message._values.items()},
        "selections": dict(message._selections),
    }


def message_from_dict(state_model: StateModel, data: Dict[str, Any]) -> Message:
    """Rebuild a message against the pit's data models.

    Selections restore before values so option subtrees exist; unknown
    paths (pit evolved since the dump) are skipped rather than fatal.
    """
    message = state_model.data_model(data["model"]).build()
    for choice_path, option in data.get("selections", {}).items():
        try:
            message.select(choice_path, option)
        except FuzzingError:
            continue
    for path, encoded in data.get("values", {}).items():
        try:
            message.set(path, _decode_value(encoded))
        except FuzzingError:
            continue
    return message


def dump_corpus(messages: List[Message]) -> str:
    """Serialise a corpus to a JSON string."""
    return json.dumps([message_to_dict(m) for m in messages], sort_keys=True)


def load_corpus(state_model: StateModel, text: str) -> List[Message]:
    """Load a corpus dumped by :func:`dump_corpus`.

    Entries whose data model no longer exists in the pit are dropped.
    """
    loaded: List[Message] = []
    for entry in json.loads(text):
        try:
            loaded.append(message_from_dict(state_model, entry))
        except FuzzingError:
            continue
    return loaded


def save_corpus_file(messages: List[Message], path: str) -> None:
    with open(path, "w") as handle:
        handle.write(dump_corpus(messages))


def load_corpus_file(state_model: StateModel, path: str) -> List[Message]:
    with open(path) as handle:
        return load_corpus(state_model, handle.read())
