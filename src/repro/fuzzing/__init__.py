"""Generation-based protocol fuzzing engine (Peach substitute).

Provides the two traditional models the paper builds on:

- **data model** (:mod:`repro.fuzzing.datamodel`): typed element trees
  (numbers, strings, blobs, blocks, choices, size relations) that render
  protocol-compliant messages;
- **state model** (:mod:`repro.fuzzing.statemodel`): states, send/receive
  actions and transitions describing message sequences.

:mod:`repro.fuzzing.mutators` and :mod:`repro.fuzzing.strategies` mutate
concrete messages; :mod:`repro.fuzzing.engine` drives one fuzzing instance
against a target session.
"""

from repro.fuzzing.corpus import dump_corpus, load_corpus, load_corpus_file, save_corpus_file
from repro.fuzzing.datamodel import (
    Blob,
    Block,
    Choice,
    DataModel,
    Number,
    Size,
    Str,
)
from repro.fuzzing.engine import FuzzEngine, IterationResult
from repro.fuzzing.pitxml import load_pit
from repro.fuzzing.statemodel import Action, State, StateModel
from repro.fuzzing.strategies import MutationStrategy, RandomFieldStrategy

__all__ = [
    "Action",
    "Blob",
    "Block",
    "Choice",
    "DataModel",
    "FuzzEngine",
    "IterationResult",
    "MutationStrategy",
    "Number",
    "RandomFieldStrategy",
    "Size",
    "State",
    "StateModel",
    "Str",
    "dump_corpus",
    "load_corpus",
    "load_corpus_file",
    "load_pit",
    "save_corpus_file",
]
