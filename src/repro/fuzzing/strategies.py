"""Mutation strategies: how many fields of a message to corrupt and how."""

from __future__ import annotations

import random
from typing import List, Sequence

from repro import fastpath
from repro.fuzzing.datamodel import Message
from repro.fuzzing.mutators import DEFAULT_MUTATORS, Mutator, mutators_for


class MutationStrategy:
    """Base strategy: transform a freshly built message before sending."""

    def apply(self, message: Message, rng: random.Random) -> Message:
        raise NotImplementedError


class RandomFieldStrategy(MutationStrategy):
    """Peach-style random strategy.

    With probability ``valid_ratio`` the message is sent untouched
    (protocol-compliant traffic keeps sessions progressing); otherwise
    between 1 and ``max_fields`` randomly chosen fields (including choice
    selections) are mutated with applicable mutators.

    On the fast path the per-call work — rebuilding the target-path
    list, resolving elements, recomputing applicable mutator sets — is
    served from the message's model template and a per-strategy
    memo; the draws themselves are bit-exact (:mod:`repro.fastrand`),
    so both code paths pick identical mutations.  The path is sampled
    at construction, like the engine's, so checkpointed strategies
    resume on the path they were built with.
    """

    def __init__(self, max_fields: int = 3, valid_ratio: float = 0.2,
                 pool: Sequence[Mutator] = DEFAULT_MUTATORS):
        if not 0 <= valid_ratio <= 1:
            raise ValueError("valid_ratio must be within [0, 1]")
        if max_fields < 1:
            raise ValueError("max_fields must be >= 1")
        self.max_fields = max_fields
        self.valid_ratio = valid_ratio
        self.pool = tuple(pool)
        self._fast = fastpath.enabled()
        #: element -> (bound mutate_fast methods, len, len.bit_length());
        #: elements are immutable per campaign, so the set never changes.
        #: Dropped from pickles — unpickled element keys would be copies
        #: that never match the campaign's elements.
        self._applicable = {}

    def __getstate__(self):
        state = dict(self.__dict__)
        state["_applicable"] = {}
        return state

    def __setstate__(self, state):
        self.__dict__.update(state)
        self._applicable = {}

    def apply(self, message: Message, rng: random.Random) -> Message:
        if self._fast and message._tpl is not None and type(rng) is random.Random:
            return self._apply_fast(message, rng)
        if rng.random() < self.valid_ratio:
            return message
        mutated = message.copy()
        targets: List[str] = [path for path, _ in mutated.fields()]
        targets.extend(mutated.choice_paths())
        if not targets:
            return mutated
        count = rng.randint(1, self.max_fields)
        for _ in range(count):
            path = rng.choice(targets)
            element = mutated.element_at(path)
            applicable = mutators_for(element, self.pool)
            if not applicable:
                continue
            mutator = rng.choice(applicable)
            mutator.mutate(mutated, path, rng)
        return mutated

    def _apply_fast(self, message: Message, rng: random.Random) -> Message:
        if rng.random() < self.valid_ratio:
            return message
        mutated = message.copy()
        template = mutated._tpl
        state = mutated._state
        if state is None:
            state = mutated._state = template.state_for(mutated._selections)
        targets = state.target_paths
        if not targets:
            return mutated
        elements = template.elements
        memo = self._applicable
        getrandbits = rng.getrandbits
        # ``randint(1, max_fields)`` and the two per-pick ``choice``
        # calls with the rejection loops inlined — bit-exact with the
        # stdlib draws, including the degenerate single-candidate case
        # (which still consumes one bit).
        width = self.max_fields
        k = width.bit_length()
        r = getrandbits(k)
        while r >= width:
            r = getrandbits(k)
        count = 1 + r
        n_targets = len(targets)
        kt = n_targets.bit_length()
        for _ in range(count):
            r = getrandbits(kt)
            while r >= n_targets:
                r = getrandbits(kt)
            path = targets[r]
            element = elements[path]
            entry = memo.get(element)
            if entry is None:
                applicable = mutators_for(element, self.pool)
                entry = (
                    [mutator.mutate_fast for mutator in applicable],
                    len(applicable),
                    len(applicable).bit_length(),
                )
                memo[element] = entry
            mutate_fasts, n, ka = entry
            if not n:
                continue
            r = getrandbits(ka)
            while r >= n:
                r = getrandbits(ka)
            mutate_fasts[r](mutated, path, rng)
        return mutated


class FieldExhaustiveStrategy(MutationStrategy):
    """Deterministically cycles through (field, mutator) pairs.

    Useful for tests and for the sequential portion of Peach's default
    strategy: each call mutates the next pair in a stable order.
    """

    def __init__(self, pool: Sequence[Mutator] = DEFAULT_MUTATORS):
        self.pool = tuple(pool)
        self._cursor = 0

    def apply(self, message: Message, rng: random.Random) -> Message:
        mutated = message.copy()
        targets = [path for path, _ in mutated.fields()] + mutated.choice_paths()
        pairs = []
        for path in targets:
            element = mutated.element_at(path)
            for mutator in mutators_for(element, self.pool):
                pairs.append((path, mutator))
        if not pairs:
            return mutated
        path, mutator = pairs[self._cursor % len(pairs)]
        self._cursor += 1
        mutator.mutate(mutated, path, rng)
        return mutated
