"""Mutation strategies: how many fields of a message to corrupt and how."""

from __future__ import annotations

import random
from typing import List, Sequence

from repro.fuzzing.datamodel import Message
from repro.fuzzing.mutators import DEFAULT_MUTATORS, Mutator, mutators_for


class MutationStrategy:
    """Base strategy: transform a freshly built message before sending."""

    def apply(self, message: Message, rng: random.Random) -> Message:
        raise NotImplementedError


class RandomFieldStrategy(MutationStrategy):
    """Peach-style random strategy.

    With probability ``valid_ratio`` the message is sent untouched
    (protocol-compliant traffic keeps sessions progressing); otherwise
    between 1 and ``max_fields`` randomly chosen fields (including choice
    selections) are mutated with applicable mutators.
    """

    def __init__(self, max_fields: int = 3, valid_ratio: float = 0.2,
                 pool: Sequence[Mutator] = DEFAULT_MUTATORS):
        if not 0 <= valid_ratio <= 1:
            raise ValueError("valid_ratio must be within [0, 1]")
        if max_fields < 1:
            raise ValueError("max_fields must be >= 1")
        self.max_fields = max_fields
        self.valid_ratio = valid_ratio
        self.pool = tuple(pool)

    def apply(self, message: Message, rng: random.Random) -> Message:
        if rng.random() < self.valid_ratio:
            return message
        mutated = message.copy()
        targets: List[str] = [path for path, _ in mutated.fields()]
        targets.extend(mutated.choice_paths())
        if not targets:
            return mutated
        count = rng.randint(1, self.max_fields)
        for _ in range(count):
            path = rng.choice(targets)
            element = mutated.element_at(path)
            applicable = mutators_for(element, self.pool)
            if not applicable:
                continue
            mutator = rng.choice(applicable)
            mutator.mutate(mutated, path, rng)
        return mutated


class FieldExhaustiveStrategy(MutationStrategy):
    """Deterministically cycles through (field, mutator) pairs.

    Useful for tests and for the sequential portion of Peach's default
    strategy: each call mutates the next pair in a stable order.
    """

    def __init__(self, pool: Sequence[Mutator] = DEFAULT_MUTATORS):
        self.pool = tuple(pool)
        self._cursor = 0

    def apply(self, message: Message, rng: random.Random) -> Message:
        mutated = message.copy()
        targets = [path for path, _ in mutated.fields()] + mutated.choice_paths()
        pairs = []
        for path in targets:
            element = mutated.element_at(path)
            for mutator in mutators_for(element, self.pool):
                pairs.append((path, mutator))
        if not pairs:
            return mutated
        path, mutator = pairs[self._cursor % len(pairs)]
        self._cursor += 1
        mutator.mutate(mutated, path, rng)
        return mutated
