"""Data models: typed element trees rendering protocol messages.

A :class:`DataModel` is a named tree of elements (Peach's DataModel /
Block / String / Number / Blob / Choice / size-of relation). Building a
model yields a :class:`Message` — a concrete instantiation holding one
value per leaf — which mutators modify and :meth:`Message.encode`
renders to bytes, resolving size relations after mutation so length
fields stay consistent unless a mutator deliberately corrupts them.
"""

from __future__ import annotations

import random
import struct
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.errors import FuzzingError


class DataElement:
    """Base class for all data model elements."""

    def __init__(self, name: str):
        if not name or "." in name:
            raise FuzzingError("element name must be non-empty and dot-free: %r" % name)
        self.name = name

    def default_value(self) -> Any:
        raise NotImplementedError

    def encode_value(self, value: Any, context: "Message") -> bytes:
        raise NotImplementedError

    def is_leaf(self) -> bool:
        return True


class Number(DataElement):
    """A fixed-width integer field.

    Args:
        bits: 8, 16, 32 or 64.
        default: Default value.
        endian: ``"big"`` or ``"little"``.
        signed: Two's-complement encoding if true.
    """

    _FORMATS = {8: "b", 16: "h", 32: "i", 64: "q"}

    def __init__(self, name: str, bits: int = 8, default: int = 0,
                 endian: str = "big", signed: bool = False):
        super().__init__(name)
        if bits not in self._FORMATS:
            raise FuzzingError("unsupported width %r for %r" % (bits, name))
        if endian not in ("big", "little"):
            raise FuzzingError("endian must be 'big' or 'little'")
        self.bits = bits
        self.default = default
        self.endian = endian
        self.signed = signed

    @property
    def min_value(self) -> int:
        return -(1 << (self.bits - 1)) if self.signed else 0

    @property
    def max_value(self) -> int:
        return (1 << (self.bits - 1)) - 1 if self.signed else (1 << self.bits) - 1

    def default_value(self) -> int:
        return self.default

    def encode_value(self, value: Any, context: "Message") -> bytes:
        code = self._FORMATS[self.bits]
        if not self.signed:
            code = code.upper()
        prefix = ">" if self.endian == "big" else "<"
        clamped = int(value) & ((1 << self.bits) - 1)
        if self.signed and clamped >= (1 << (self.bits - 1)):
            clamped -= 1 << self.bits
        return struct.pack(prefix + code, clamped)


class Str(DataElement):
    """A variable-length string field (UTF-8 on encode)."""

    def __init__(self, name: str, default: str = "", max_length: int = 4096):
        super().__init__(name)
        self.default = default
        self.max_length = max_length

    def default_value(self) -> str:
        return self.default

    def encode_value(self, value: Any, context: "Message") -> bytes:
        if isinstance(value, bytes):
            return value[: self.max_length]
        return str(value).encode("utf-8", errors="replace")[: self.max_length]


class Blob(DataElement):
    """An opaque byte-sequence field."""

    def __init__(self, name: str, default: bytes = b"", max_length: int = 65536):
        super().__init__(name)
        self.default = bytes(default)
        self.max_length = max_length

    def default_value(self) -> bytes:
        return self.default

    def encode_value(self, value: Any, context: "Message") -> bytes:
        return bytes(value)[: self.max_length]


class Size(DataElement):
    """A size-of relation: encodes the byte length of another element.

    ``of`` is the dot-path of the measured element relative to the model
    root. The value is computed at encode time; mutators may pin an
    explicit override to corrupt the relation.
    """

    def __init__(self, name: str, of: str, bits: int = 16, endian: str = "big",
                 adjust: int = 0):
        super().__init__(name)
        self.of = of
        self.bits = bits
        self.endian = endian
        self.adjust = adjust

    def default_value(self) -> Optional[int]:
        return None  # computed at encode time

    def encode_value(self, value: Any, context: "Message") -> bytes:
        if value is None:
            value = len(context.encode_path(self.of)) + self.adjust
        number = Number(self.name, bits=self.bits, endian=self.endian)
        return number.encode_value(value, context)


class Block(DataElement):
    """An ordered container of child elements."""

    def __init__(self, name: str, children: Sequence[DataElement]):
        super().__init__(name)
        names = [child.name for child in children]
        if len(set(names)) != len(names):
            raise FuzzingError("duplicate child names in block %r" % name)
        self.children = list(children)

    def is_leaf(self) -> bool:
        return False

    def default_value(self) -> None:
        return None

    def encode_value(self, value: Any, context: "Message") -> bytes:
        raise FuzzingError("blocks are encoded structurally, not by value")


class Choice(DataElement):
    """Selects exactly one of several alternative children.

    The message stores the selected child's name; generation defaults to
    the first option, and mutators may switch options.
    """

    def __init__(self, name: str, options: Sequence[DataElement]):
        super().__init__(name)
        if not options:
            raise FuzzingError("choice %r requires at least one option" % name)
        names = [option.name for option in options]
        if len(set(names)) != len(names):
            raise FuzzingError("duplicate option names in choice %r" % name)
        self.options = list(options)

    def is_leaf(self) -> bool:
        return False

    def default_value(self) -> str:
        return self.options[0].name

    def option(self, name: str) -> DataElement:
        for candidate in self.options:
            if candidate.name == name:
                return candidate
        raise FuzzingError("choice %r has no option %r" % (self.name, name))

    def encode_value(self, value: Any, context: "Message") -> bytes:
        raise FuzzingError("choices are encoded structurally, not by value")


class DataModel:
    """A named message format: a root block plus build/encode helpers."""

    def __init__(self, name: str, children: Sequence[DataElement]):
        self.name = name
        self.root = Block(name, children)

    def build(self, rng: Optional[random.Random] = None) -> "Message":
        """Instantiate a concrete default message."""
        return Message(self, rng=rng)

    def leaf_paths(self) -> List[str]:
        """Dot-paths of every leaf under the default choice selections."""
        message = self.build()
        return [path for path, _ in message.fields()]

    def __repr__(self) -> str:
        return "DataModel(%r)" % self.name


#: Lazily bound ``repro.fuzzing.template.template_for`` (the template
#: module imports this one, so the reference cannot be taken at import
#: time without a cycle).
_template_for = None


def _resolve_template(model: "DataModel"):
    global _template_for
    if _template_for is None:
        from repro.fuzzing.template import template_for

        _template_for = template_for
    return _template_for(model)


class Message:
    """A concrete instantiation of a data model.

    Stores per-path values for leaves and selected options for choices.
    Paths are dot-joined element names, rooted below the model name
    (e.g. ``header.flags``).

    When the :mod:`repro.fastpath` switch is on (the default) and the
    model compiles, the message carries a
    :class:`~repro.fuzzing.template.ModelTemplate` in ``_tpl`` and the
    tree-walking operations below become dict probes against it; with
    ``_tpl is None`` every method runs its original recursive body.
    Both paths are observationally identical.  ``_tpl`` is derived data
    and never pickled — it is re-resolved on unpickle.
    """

    def __init__(self, model: DataModel, rng: Optional[random.Random] = None):
        self.model = model
        self.rng = rng or random.Random(0)
        template = _resolve_template(model)
        self._tpl = template
        #: Memoised selection state (template messages only) — resolved
        #: lazily, dropped whenever a selection changes. Derived data,
        #: never pickled (it holds a generated encode function).
        self._state = None
        #: False once any value or selection was written; clean template
        #: messages encode to their state's cached default bytes.
        self._clean = True
        if template is not None:
            self._values: Dict[str, Any] = dict(template.default_values)
            self._selections: Dict[str, str] = dict(template.default_selections)
        else:
            self._values = {}
            self._selections = {}
            self._populate(model.root, "")

    def _populate(self, element: DataElement, prefix: str) -> None:
        if isinstance(element, Block):
            for child in element.children:
                self._populate(child, self._join(prefix, child.name))
        elif isinstance(element, Choice):
            selected = element.default_value()
            self._selections[prefix] = selected
            chosen = element.option(selected)
            self._populate(chosen, self._join(prefix, chosen.name))
        else:
            self._values[prefix] = element.default_value()

    @staticmethod
    def _join(prefix: str, name: str) -> str:
        return name if not prefix else prefix + "." + name

    # -- access ------------------------------------------------------------

    def fields(self) -> List[Tuple[str, Any]]:
        """All active leaf (path, value) pairs in document order."""
        template = self._tpl
        if template is not None:
            get = self._values.get
            return [(path, get(path)) for path in self._active_state().field_paths]
        result: List[Tuple[str, Any]] = []
        self._collect(self.model.root, "", result)
        return result

    def _collect(self, element: DataElement, prefix: str, sink: List[Tuple[str, Any]]) -> None:
        if isinstance(element, Block):
            for child in element.children:
                self._collect(child, self._join(prefix, child.name), sink)
        elif isinstance(element, Choice):
            selected = self._selections.get(prefix, element.default_value())
            chosen = element.option(selected)
            self._collect(chosen, self._join(prefix, chosen.name), sink)
        else:
            sink.append((prefix, self._values.get(prefix)))

    def choice_paths(self) -> List[str]:
        """Paths of all active choice nodes."""
        return sorted(self._selections)

    def _active_state(self):
        """The template selection state for the current selections."""
        state = self._state
        if state is None:
            state = self._state = self._tpl.state_for(self._selections)
        return state

    def element_at(self, path: str) -> DataElement:
        """Resolve the element a path points at (following selections)."""
        template = self._tpl
        if template is not None:
            found = template.elements.get(path)
            if found is not None:
                return found
            # Invalid paths drop through to the walk for its exact errors.
        element: DataElement = self.model.root
        walked = ""
        if not path:
            return element
        for part in path.split("."):
            walked = self._join(walked, part)
            if isinstance(element, Block):
                matches = [c for c in element.children if c.name == part]
                if not matches:
                    raise FuzzingError("no element %r in %r" % (part, element.name))
                element = matches[0]
            elif isinstance(element, Choice):
                element = element.option(part)
            else:
                raise FuzzingError("path %r descends below leaf %r" % (path, element.name))
            # Compensate walked when descending through a choice: the
            # choice node itself is addressed by its prefix, options by
            # prefix + option name, matching _populate.
        return element

    def get(self, path: str) -> Any:
        if path in self._values:
            return self._values[path]
        raise FuzzingError("no value at path %r" % path)

    def set(self, path: str, value: Any) -> None:
        if path not in self._values:
            raise FuzzingError("no value at path %r" % path)
        self._values[path] = value
        self._clean = False

    def select(self, choice_path: str, option_name: str) -> None:
        """Switch a choice to a different option, (re)populating it."""
        element = self.element_at(choice_path) if choice_path else self.model.root
        if not isinstance(element, Choice):
            raise FuzzingError("%r is not a choice" % choice_path)
        option = element.option(option_name)  # validates
        self._selections[choice_path] = option_name
        self._state = None
        self._clean = False
        template = self._tpl
        if template is not None:
            state = template.option_state.get((choice_path, option_name))
            if state is not None:
                option_values, option_selections = state
                self._values.update(option_values)
                self._selections.update(option_selections)
                return
        self._populate(option, self._join(choice_path, option.name))

    def selection(self, choice_path: str) -> str:
        try:
            return self._selections[choice_path]
        except KeyError:
            raise FuzzingError("no selection at %r" % choice_path)

    def copy(self) -> "Message":
        template = self._tpl
        if template is not None:
            # Skip __init__: the clone overwrites both dicts anyway.
            clone = Message.__new__(Message)
            clone.model = self.model
            clone.rng = self.rng
            clone._tpl = template
        else:
            clone = Message(self.model, rng=self.rng)
        clone._state = self._state
        clone._clean = self._clean
        clone._values = dict(self._values)
        clone._selections = dict(self._selections)
        return clone

    # -- encoding ------------------------------------------------------------

    def encode(self) -> bytes:
        if self._tpl is not None:
            state = self._active_state()
            if self._clean:
                # Never written to: the encoding is the state's default
                # bytes, identical for every pristine message (size
                # relations included — they see default values too).
                cached = state.default_bytes
                if cached is None:
                    cached = state.default_bytes = state.encode(self._values, self)
                return cached
            return state.encode(self._values, self)
        return self._encode_element(self.model.root, "")

    def encode_path(self, path: str) -> bytes:
        """Encode the element at ``path`` (used by size relations)."""
        return self._encode_element(self.element_at(path), path)

    def _encode_element(self, element: DataElement, prefix: str) -> bytes:
        if isinstance(element, Block):
            parts = [
                self._encode_element(child, self._join(prefix, child.name))
                for child in element.children
            ]
            return b"".join(parts)
        if isinstance(element, Choice):
            selected = self._selections.get(prefix, element.default_value())
            chosen = element.option(selected)
            return self._encode_element(chosen, self._join(prefix, chosen.name))
        value = self._values.get(prefix, element.default_value())
        return element.encode_value(value, self)

    # -- pickling ------------------------------------------------------------
    # Templates are derived, module-cached data; shipping them inside
    # checkpoint payloads would bloat every corpus seed (and pin
    # struct.Struct closures into pickles). Drop and re-resolve.

    def __getstate__(self):
        state = self.__dict__.copy()
        state.pop("_tpl", None)
        state.pop("_state", None)
        return state

    def __setstate__(self, state) -> None:
        self.__dict__.update(state)
        self._tpl = _resolve_template(self.model)
        self._state = None

    def __repr__(self) -> str:
        return "Message(%r, %d fields)" % (self.model.name, len(self._values))
