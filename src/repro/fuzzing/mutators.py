"""Field mutators: the transformations the engine applies to messages.

Mutation-based corruption of generated messages (bit flips, boundary
numbers, truncation, oversized strings, relation corruption) mirrors the
mutator families of Peach. Each mutator declares which element types it
applies to; :func:`mutators_for` selects the applicable set for a field.
"""

from __future__ import annotations

import random
from typing import List

from repro.fuzzing.datamodel import (
    Blob,
    Choice,
    DataElement,
    Message,
    Number,
    Size,
    Str,
)

_INTERESTING_STRINGS = (
    "",
    "A" * 64,
    "A" * 1024,
    "%s%s%s%n",
    "../../../../etc/passwd",
    "\x00",
    "\xff\xfe",
    "0" * 128,
    "true",
    "-1",
)


class Mutator:
    """Base mutator: transforms one field value of a message in place."""

    name = "mutator"

    def applies_to(self, element: DataElement) -> bool:
        raise NotImplementedError

    def mutate(self, message: Message, path: str, rng: random.Random) -> None:
        raise NotImplementedError

    def __repr__(self) -> str:
        return self.name


class NumberBoundaryMutator(Mutator):
    """Replace a number with a boundary or near-boundary value."""

    name = "number-boundary"

    def applies_to(self, element: DataElement) -> bool:
        return isinstance(element, Number)

    def mutate(self, message: Message, path: str, rng: random.Random) -> None:
        element = message.element_at(path)
        assert isinstance(element, Number)
        candidates = [
            0, 1, -1, element.max_value, element.max_value - 1,
            element.min_value, element.max_value // 2,
            element.max_value + 1,
        ]
        message.set(path, rng.choice(candidates))


class NumberRandomMutator(Mutator):
    """Replace a number with a uniformly random in-range value."""

    name = "number-random"

    def applies_to(self, element: DataElement) -> bool:
        return isinstance(element, Number)

    def mutate(self, message: Message, path: str, rng: random.Random) -> None:
        element = message.element_at(path)
        assert isinstance(element, Number)
        message.set(path, rng.randint(element.min_value, element.max_value))


class NumberBitFlipMutator(Mutator):
    """Flip a random bit of the current numeric value."""

    name = "number-bitflip"

    def applies_to(self, element: DataElement) -> bool:
        return isinstance(element, Number)

    def mutate(self, message: Message, path: str, rng: random.Random) -> None:
        element = message.element_at(path)
        assert isinstance(element, Number)
        current = int(message.get(path) or 0)
        bit = rng.randrange(element.bits)
        message.set(path, current ^ (1 << bit))


class StringMutator(Mutator):
    """Swap a string for an interesting literal or inflate/truncate it."""

    name = "string"

    def applies_to(self, element: DataElement) -> bool:
        return isinstance(element, Str)

    def mutate(self, message: Message, path: str, rng: random.Random) -> None:
        current = str(message.get(path) or "")
        action = rng.randrange(4)
        if action == 0:
            message.set(path, rng.choice(_INTERESTING_STRINGS))
        elif action == 1:
            message.set(path, current + "A" * rng.choice((16, 256, 2048)))
        elif action == 2:
            message.set(path, current[: max(0, len(current) // 2)])
        else:
            position = rng.randrange(max(1, len(current) + 1))
            junk = chr(rng.randrange(1, 256))
            message.set(path, current[:position] + junk + current[position:])


class BlobMutator(Mutator):
    """Bit-flip, truncate, extend or zero a blob."""

    name = "blob"

    def applies_to(self, element: DataElement) -> bool:
        return isinstance(element, Blob)

    def mutate(self, message: Message, path: str, rng: random.Random) -> None:
        current = bytearray(message.get(path) or b"")
        action = rng.randrange(4)
        if action == 0 and current:
            index = rng.randrange(len(current))
            current[index] ^= 1 << rng.randrange(8)
        elif action == 1:
            current = current[: len(current) // 2]
        elif action == 2:
            current.extend(bytes([rng.randrange(256)]) * rng.choice((8, 64, 512)))
        else:
            current = bytearray(rng.randrange(256) for _ in range(rng.choice((1, 16, 128))))
        message.set(path, bytes(current))


class SizeCorruptionMutator(Mutator):
    """Pin a size relation to a wrong value (under/over/huge)."""

    name = "size-corruption"

    def applies_to(self, element: DataElement) -> bool:
        return isinstance(element, Size)

    def mutate(self, message: Message, path: str, rng: random.Random) -> None:
        element = message.element_at(path)
        assert isinstance(element, Size)
        actual = len(message.encode_path(element.of)) + element.adjust
        candidates = [0, actual + 1, max(0, actual - 1), actual * 2,
                      (1 << element.bits) - 1]
        message.set(path, rng.choice(candidates))


class ChoiceSwitchMutator(Mutator):
    """Switch a choice to a different option."""

    name = "choice-switch"

    def applies_to(self, element: DataElement) -> bool:
        return isinstance(element, Choice) and len(element.options) > 1

    def mutate(self, message: Message, path: str, rng: random.Random) -> None:
        element = message.element_at(path)
        assert isinstance(element, Choice)
        current = message.selection(path)
        others = [option.name for option in element.options if option.name != current]
        message.select(path, rng.choice(others))


#: The default mutator pool, in a deterministic order.
DEFAULT_MUTATORS = (
    NumberBoundaryMutator(),
    NumberRandomMutator(),
    NumberBitFlipMutator(),
    StringMutator(),
    BlobMutator(),
    SizeCorruptionMutator(),
    ChoiceSwitchMutator(),
)


def mutators_for(element: DataElement, pool=DEFAULT_MUTATORS) -> List[Mutator]:
    """The subset of ``pool`` applicable to ``element``."""
    return [mutator for mutator in pool if mutator.applies_to(element)]
