"""Field mutators: the transformations the engine applies to messages.

Mutation-based corruption of generated messages (bit flips, boundary
numbers, truncation, oversized strings, relation corruption) mirrors the
mutator families of Peach. Each mutator declares which element types it
applies to; :func:`mutators_for` selects the applicable set for a field.

Every mutator has two entry points. :meth:`Mutator.mutate` is the
public one: it preserves the pre-fast-path behaviour bit for bit and,
when the campaign runs the fast path with a stock generator, defers to
:meth:`Mutator.mutate_fast`. The fast body draws through
:mod:`repro.fastrand` (whose helpers consume the generator's state
exactly like the stdlib methods they replace) and serves per-element
constants (boundary candidate lists, min/max bounds) from weak memo
tables — mutation sequences are identical on both paths, the fast one
just skips the stdlib argument ceremony and property recomputation.
The hot-loop strategy calls ``mutate_fast`` directly, having already
established both preconditions once per message.
"""

from __future__ import annotations

import random
from typing import List
from weakref import WeakKeyDictionary

from repro import fastpath, fastrand
from repro.fuzzing.datamodel import (
    Blob,
    Choice,
    DataElement,
    Message,
    Number,
    Size,
    Str,
)

_INTERESTING_STRINGS = (
    "",
    "A" * 64,
    "A" * 1024,
    "%s%s%s%n",
    "../../../../etc/passwd",
    "\x00",
    "\xff\xfe",
    "0" * 128,
    "true",
    "-1",
)


def _fast(rng) -> bool:
    """Fast draws only for the stock generator (subclasses may override
    their draw methods) and only when the campaign runs the fast path —
    the slow path must stay an unmodified reference for the engine A/B
    benchmark."""
    return type(rng) is random.Random and fastpath.enabled()


class Mutator:
    """Base mutator: transforms one field value of a message in place."""

    name = "mutator"

    def applies_to(self, element: DataElement) -> bool:
        raise NotImplementedError

    def mutate(self, message: Message, path: str, rng: random.Random) -> None:
        raise NotImplementedError

    def mutate_fast(self, message: Message, path: str, rng: random.Random) -> None:
        """Called by the fast-path strategy once it has verified the
        generator is a stock :class:`random.Random` and the fast path is
        on. Third-party mutators inherit the safe fallback."""
        self.mutate(message, path, rng)

    def __repr__(self) -> str:
        return self.name


# Per-element constants the numeric mutators would otherwise rebuild on
# every call (min/max are computed properties). Keyed weakly so test
# fixtures don't accumulate; module-level (not on the mutator instances)
# so the shared DEFAULT_MUTATORS stay plainly picklable.
_NUMBER_BOUNDS: "WeakKeyDictionary[Number, tuple]" = WeakKeyDictionary()
_BOUNDARY_CANDIDATES: "WeakKeyDictionary[Number, list]" = WeakKeyDictionary()


def _number_bounds(element: Number) -> tuple:
    bounds = _NUMBER_BOUNDS.get(element)
    if bounds is None:
        bounds = (element.min_value, element.max_value)
        _NUMBER_BOUNDS[element] = bounds
    return bounds


class NumberBoundaryMutator(Mutator):
    """Replace a number with a boundary or near-boundary value."""

    name = "number-boundary"

    def applies_to(self, element: DataElement) -> bool:
        return isinstance(element, Number)

    def mutate_fast(self, message: Message, path: str, rng: random.Random) -> None:
        element = message.element_at(path)
        candidates = _BOUNDARY_CANDIDATES.get(element)
        if candidates is None:
            low, high = _number_bounds(element)
            candidates = [0, 1, -1, high, high - 1, low, high // 2, high + 1]
            _BOUNDARY_CANDIDATES[element] = candidates
        message.set(path, fastrand.choice(rng, candidates))

    def mutate(self, message: Message, path: str, rng: random.Random) -> None:
        if _fast(rng):
            self.mutate_fast(message, path, rng)
            return
        element = message.element_at(path)
        assert isinstance(element, Number)
        candidates = [
            0, 1, -1, element.max_value, element.max_value - 1,
            element.min_value, element.max_value // 2,
            element.max_value + 1,
        ]
        message.set(path, rng.choice(candidates))


class NumberRandomMutator(Mutator):
    """Replace a number with a uniformly random in-range value."""

    name = "number-random"

    def applies_to(self, element: DataElement) -> bool:
        return isinstance(element, Number)

    def mutate_fast(self, message: Message, path: str, rng: random.Random) -> None:
        low, high = _number_bounds(message.element_at(path))
        message.set(path, fastrand.randint(rng, low, high))

    def mutate(self, message: Message, path: str, rng: random.Random) -> None:
        if _fast(rng):
            self.mutate_fast(message, path, rng)
            return
        element = message.element_at(path)
        assert isinstance(element, Number)
        message.set(path, rng.randint(element.min_value, element.max_value))


class NumberBitFlipMutator(Mutator):
    """Flip a random bit of the current numeric value."""

    name = "number-bitflip"

    def applies_to(self, element: DataElement) -> bool:
        return isinstance(element, Number)

    def mutate_fast(self, message: Message, path: str, rng: random.Random) -> None:
        element = message.element_at(path)
        current = int(message.get(path) or 0)
        bit = fastrand.randrange(rng, element.bits)
        message.set(path, current ^ (1 << bit))

    def mutate(self, message: Message, path: str, rng: random.Random) -> None:
        if _fast(rng):
            self.mutate_fast(message, path, rng)
            return
        element = message.element_at(path)
        assert isinstance(element, Number)
        current = int(message.get(path) or 0)
        bit = rng.randrange(element.bits)
        message.set(path, current ^ (1 << bit))


class StringMutator(Mutator):
    """Swap a string for an interesting literal or inflate/truncate it."""

    name = "string"

    def applies_to(self, element: DataElement) -> bool:
        return isinstance(element, Str)

    def mutate_fast(self, message: Message, path: str, rng: random.Random) -> None:
        current = str(message.get(path) or "")
        action = fastrand.randrange(rng, 4)
        if action == 0:
            message.set(path, fastrand.choice(rng, _INTERESTING_STRINGS))
        elif action == 1:
            message.set(
                path, current + "A" * fastrand.choice(rng, (16, 256, 2048)))
        elif action == 2:
            message.set(path, current[: max(0, len(current) // 2)])
        else:
            position = fastrand.randrange(rng, max(1, len(current) + 1))
            junk = chr(fastrand.randrange(rng, 1, 256))
            message.set(path, current[:position] + junk + current[position:])

    def mutate(self, message: Message, path: str, rng: random.Random) -> None:
        if _fast(rng):
            self.mutate_fast(message, path, rng)
            return
        current = str(message.get(path) or "")
        action = rng.randrange(4)
        if action == 0:
            message.set(path, rng.choice(_INTERESTING_STRINGS))
        elif action == 1:
            message.set(path, current + "A" * rng.choice((16, 256, 2048)))
        elif action == 2:
            message.set(path, current[: max(0, len(current) // 2)])
        else:
            position = rng.randrange(max(1, len(current) + 1))
            junk = chr(rng.randrange(1, 256))
            message.set(path, current[:position] + junk + current[position:])


class BlobMutator(Mutator):
    """Bit-flip, truncate, extend or zero a blob."""

    name = "blob"

    def applies_to(self, element: DataElement) -> bool:
        return isinstance(element, Blob)

    def mutate_fast(self, message: Message, path: str, rng: random.Random) -> None:
        current = bytearray(message.get(path) or b"")
        action = fastrand.randrange(rng, 4)
        if action == 0 and current:
            index = fastrand.randrange(rng, len(current))
            current[index] ^= 1 << fastrand.randrange(rng, 8)
        elif action == 1:
            current = current[: len(current) // 2]
        elif action == 2:
            current.extend(
                bytes([fastrand.randrange(rng, 256)])
                * fastrand.choice(rng, (8, 64, 512)))
        else:
            current = bytearray(fastrand.randbelow_many(
                rng, 256, fastrand.choice(rng, (1, 16, 128))))
        message.set(path, bytes(current))

    def mutate(self, message: Message, path: str, rng: random.Random) -> None:
        if _fast(rng):
            self.mutate_fast(message, path, rng)
            return
        current = bytearray(message.get(path) or b"")
        action = rng.randrange(4)
        if action == 0 and current:
            index = rng.randrange(len(current))
            current[index] ^= 1 << rng.randrange(8)
        elif action == 1:
            current = current[: len(current) // 2]
        elif action == 2:
            current.extend(bytes([rng.randrange(256)]) * rng.choice((8, 64, 512)))
        else:
            current = bytearray(rng.randrange(256) for _ in range(rng.choice((1, 16, 128))))
        message.set(path, bytes(current))


class SizeCorruptionMutator(Mutator):
    """Pin a size relation to a wrong value (under/over/huge)."""

    name = "size-corruption"

    def applies_to(self, element: DataElement) -> bool:
        return isinstance(element, Size)

    def mutate_fast(self, message: Message, path: str, rng: random.Random) -> None:
        element = message.element_at(path)
        actual = len(message.encode_path(element.of)) + element.adjust
        candidates = [0, actual + 1, max(0, actual - 1), actual * 2,
                      (1 << element.bits) - 1]
        message.set(path, fastrand.choice(rng, candidates))

    def mutate(self, message: Message, path: str, rng: random.Random) -> None:
        if _fast(rng):
            self.mutate_fast(message, path, rng)
            return
        element = message.element_at(path)
        assert isinstance(element, Size)
        actual = len(message.encode_path(element.of)) + element.adjust
        candidates = [0, actual + 1, max(0, actual - 1), actual * 2,
                      (1 << element.bits) - 1]
        message.set(path, rng.choice(candidates))


class ChoiceSwitchMutator(Mutator):
    """Switch a choice to a different option."""

    name = "choice-switch"

    def applies_to(self, element: DataElement) -> bool:
        return isinstance(element, Choice) and len(element.options) > 1

    def mutate_fast(self, message: Message, path: str, rng: random.Random) -> None:
        element = message.element_at(path)
        current = message.selection(path)
        others = [option.name for option in element.options if option.name != current]
        message.select(path, fastrand.choice(rng, others))

    def mutate(self, message: Message, path: str, rng: random.Random) -> None:
        if _fast(rng):
            self.mutate_fast(message, path, rng)
            return
        element = message.element_at(path)
        assert isinstance(element, Choice)
        current = message.selection(path)
        others = [option.name for option in element.options if option.name != current]
        message.select(path, rng.choice(others))


#: The default mutator pool, in a deterministic order.
DEFAULT_MUTATORS = (
    NumberBoundaryMutator(),
    NumberRandomMutator(),
    NumberBitFlipMutator(),
    StringMutator(),
    BlobMutator(),
    SizeCorruptionMutator(),
    ChoiceSwitchMutator(),
)


def mutators_for(element: DataElement, pool=DEFAULT_MUTATORS) -> List[Mutator]:
    """The subset of ``pool`` applicable to ``element``."""
    return [mutator for mutator in pool if mutator.applies_to(element)]
