"""The target plugin registry: one place the target catalogue lives.

A target is a *directory with a manifest*: a subpackage carrying a
``target.json`` file (protocol, description, config-surface summary,
data/state model refs, injected-bug table) next to its implementation
modules. The package's ``__init__`` loads and validates the manifest and
calls :func:`register_target` — and every consumer derives its catalogue
from here: the CLI's ``--target`` choices and ``python -m repro targets``
table, :func:`repro.api` name resolution, the campaign executor's spec
reconstruction, the probe pool's worker body, the experiment drivers and
the benchmarks. Adding a target therefore requires zero edits outside
its own directory (pinned by ``tests/targets/test_registry.py``).

Discovery runs lazily on the first catalogue query:

- every subdirectory of ``repro/targets/`` that carries a ``target.json``
  is imported as ``repro.targets.<dirname>`` (importing the package
  registers its target as a side effect) — dropping a new directory into
  the tree is the whole installation step;
- every module named in the ``CMFUZZ_TARGET_MODULES`` environment
  variable (comma-separated import paths) is imported — the out-of-tree
  path for targets living anywhere on ``sys.path``;
- ``importlib.metadata`` entry points in the ``repro.targets`` group are
  loaded (loading the module registers; a loaded callable is called with
  no arguments so a factory module can finish its own registration).

Registered targets must obey the house invariants: the target class and
the state-model factory are importable module-level objects (campaign
specs cross process boundaries by *name* and checkpoints pickle engine
state whole, so closures cannot be registered), all behaviour is a pure
function of configuration + inbound bytes, and coverage sites never
embed attacker-controlled data. The golden-parity, robustness and storm
suites enumerate every registered target, so a new registration is
automatically held to them.
"""

from __future__ import annotations

import importlib
import json
import os
import threading
from collections.abc import Mapping
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterator, Optional, Tuple

#: Environment variable naming extra target modules (comma-separated
#: import paths) to import during discovery.
DISCOVERY_ENV = "CMFUZZ_TARGET_MODULES"

#: ``importlib.metadata`` entry-point group scanned during discovery.
ENTRY_POINT_GROUP = "repro.targets"

#: The manifest file a target directory must carry.
MANIFEST_NAME = "target.json"


class ManifestError(ValueError):
    """A ``target.json`` manifest is missing, unreadable or malformed."""


@dataclass(frozen=True)
class InjectedBug:
    """One row of a target's injected-bug ledger (its Table II slice)."""

    id: int
    kind: str
    site: str
    trigger: str


@dataclass(frozen=True)
class TargetManifest:
    """The validated contents of one ``target.json``.

    Attributes:
        name: Registry name (``"dnsmasq"``).
        protocol: Protocol label as used in crash signatures (``"DNS"``).
        description: One-line summary (catalogue tables show it).
        port: Default listen port.
        config_surface: Summary of the configuration surface — at least
            ``format`` (how the sources are expressed: ``key-value``,
            ``cli-options``, ``custom-directives``, ...) and ``keys``
            (how many configuration items the default surface carries).
        pit: Data/state model reference, ``"module.path:callable"`` —
            the factory producing the target's
            :class:`~repro.fuzzing.statemodel.StateModel`.
        bugs: The injected-bug table.
    """

    name: str
    protocol: str
    description: str
    port: int
    config_surface: Dict[str, Any]
    pit: str
    bugs: Tuple[InjectedBug, ...] = ()


_REQUIRED_KEYS = ("name", "protocol", "description", "port",
                  "config_surface", "pit")
_ALLOWED_KEYS = frozenset(_REQUIRED_KEYS) | {"bugs"}
_BUG_KEYS = ("id", "kind", "site", "trigger")


def _manifest_error(origin: str, message: str) -> ManifestError:
    return ManifestError("%s: %s" % (origin, message))


def validate_manifest(raw: Any, origin: str = MANIFEST_NAME) -> TargetManifest:
    """Schema-validate a decoded manifest and freeze it.

    Raises :class:`ManifestError` naming the offending field; the origin
    (usually the manifest path) prefixes every message.
    """
    if not isinstance(raw, dict):
        raise _manifest_error(origin, "manifest must be a JSON object, got %s"
                              % type(raw).__name__)
    unknown = sorted(set(raw) - _ALLOWED_KEYS)
    if unknown:
        raise _manifest_error(origin, "unknown manifest keys: %s"
                              % ", ".join(unknown))
    missing = [key for key in _REQUIRED_KEYS if key not in raw]
    if missing:
        raise _manifest_error(origin, "missing manifest keys: %s"
                              % ", ".join(missing))
    for key in ("name", "protocol", "description", "pit"):
        value = raw[key]
        if not isinstance(value, str) or not value.strip():
            raise _manifest_error(origin, "%r must be a non-empty string, "
                                  "got %r" % (key, value))
    name = raw["name"]
    if not name.replace("-", "_").isidentifier():
        raise _manifest_error(origin, "'name' must be an identifier-like "
                              "token, got %r" % name)
    port = raw["port"]
    if isinstance(port, bool) or not isinstance(port, int) or \
            not 0 < port < 65536:
        raise _manifest_error(origin, "'port' must be an int in (0, 65536), "
                              "got %r" % (port,))
    surface = raw["config_surface"]
    if not isinstance(surface, dict):
        raise _manifest_error(origin, "'config_surface' must be an object, "
                              "got %r" % (surface,))
    if not isinstance(surface.get("format"), str) or not surface["format"]:
        raise _manifest_error(origin, "'config_surface.format' must be a "
                              "non-empty string, got %r"
                              % (surface.get("format"),))
    keys = surface.get("keys")
    if isinstance(keys, bool) or not isinstance(keys, int) or keys <= 0:
        raise _manifest_error(origin, "'config_surface.keys' must be a "
                              "positive int, got %r" % (keys,))
    pit = raw["pit"]
    if pit.count(":") != 1 or not all(pit.split(":")):
        raise _manifest_error(origin, "'pit' must be a 'module:callable' "
                              "reference, got %r" % pit)
    bugs = []
    for index, entry in enumerate(raw.get("bugs", ())):
        if not isinstance(entry, dict) or \
                sorted(entry) != sorted(_BUG_KEYS):
            raise _manifest_error(origin, "bugs[%d] must be an object with "
                                  "exactly the keys %s, got %r"
                                  % (index, "/".join(_BUG_KEYS), entry))
        if isinstance(entry["id"], bool) or not isinstance(entry["id"], int):
            raise _manifest_error(origin, "bugs[%d].id must be an int, got "
                                  "%r" % (index, entry["id"]))
        for key in ("kind", "site", "trigger"):
            if not isinstance(entry[key], str) or not entry[key]:
                raise _manifest_error(origin, "bugs[%d].%s must be a "
                                      "non-empty string, got %r"
                                      % (index, key, entry[key]))
        bugs.append(InjectedBug(id=entry["id"], kind=entry["kind"],
                                site=entry["site"], trigger=entry["trigger"]))
    return TargetManifest(
        name=name, protocol=raw["protocol"],
        description=" ".join(raw["description"].split()), port=port,
        config_surface=dict(surface), pit=pit, bugs=tuple(bugs),
    )


def load_manifest(where: str) -> TargetManifest:
    """Load and validate the ``target.json`` next to ``where``.

    ``where`` is a directory or any file inside it (pass ``__file__``
    from the target package's ``__init__``).
    """
    directory = where if os.path.isdir(where) else os.path.dirname(
        os.path.abspath(where))
    path = os.path.join(directory, MANIFEST_NAME)
    try:
        with open(path, "r", encoding="utf-8") as handle:
            raw = json.load(handle)
    except OSError as error:
        raise _manifest_error(path, "cannot read manifest: %s" % error)
    except ValueError as error:
        raise _manifest_error(path, "invalid JSON: %s" % error)
    return validate_manifest(raw, origin=path)


@dataclass(frozen=True)
class TargetEntry:
    """One registered target: class, state-model factory and manifest."""

    name: str
    target_cls: Callable
    state_model: Callable
    manifest: TargetManifest
    description: str = ""

    @property
    def protocol(self) -> str:
        return self.manifest.protocol

    @property
    def port(self) -> int:
        return self.manifest.port


_REGISTRY: Dict[str, TargetEntry] = {}
_discovered = False
_discovering = False
_discover_lock = threading.RLock()


def register_target(name: str, target_cls: Callable,
                    state_model: Callable,
                    manifest: TargetManifest,
                    replace: bool = False) -> TargetEntry:
    """Register a protocol target under ``name``.

    Re-registering the *same* class/state-model pair is a no-op (module
    re-imports are harmless); registering a different implementation
    under a taken name raises unless ``replace=True``. The manifest is
    cross-checked against the class (name, protocol, port must agree) so
    a stale ``target.json`` fails loudly at registration, not mid-
    campaign. Returns the :class:`TargetEntry`.
    """
    if not name or not name.replace("-", "_").isidentifier():
        raise ValueError("target name must be a non-empty identifier, got %r"
                         % (name,))
    if not callable(target_cls):
        raise TypeError("target class for %r must be callable, got %r"
                        % (name, type(target_cls).__name__))
    if not callable(state_model):
        raise TypeError("state-model factory for %r must be callable, got %r"
                        % (name, type(state_model).__name__))
    if isinstance(manifest, dict):
        manifest = validate_manifest(manifest, origin="<manifest for %s>" % name)
    if not isinstance(manifest, TargetManifest):
        raise TypeError("manifest for %r must be a TargetManifest or dict, "
                        "got %r" % (name, type(manifest).__name__))
    if manifest.name != name:
        raise ManifestError("manifest names %r but is being registered as %r"
                            % (manifest.name, name))
    cls_protocol = getattr(target_cls, "PROTOCOL", manifest.protocol)
    if cls_protocol != manifest.protocol:
        raise ManifestError(
            "manifest for %r declares protocol %r but the class carries %r"
            % (name, manifest.protocol, cls_protocol))
    cls_port = getattr(target_cls, "PORT", manifest.port)
    if cls_port != manifest.port:
        raise ManifestError(
            "manifest for %r declares port %r but the class carries %r"
            % (name, manifest.port, cls_port))
    existing = _REGISTRY.get(name)
    if existing is not None and not replace:
        if existing.target_cls is target_cls and \
                existing.state_model is state_model:
            return existing
        raise ValueError(
            "target %r is already registered to %r (pass replace=True to "
            "override)" % (name, existing.target_cls))
    entry = TargetEntry(name=name, target_cls=target_cls,
                        state_model=state_model, manifest=manifest,
                        description=manifest.description)
    _REGISTRY[name] = entry
    return entry


def unregister_target(name: str) -> None:
    """Remove a registration (test hygiene for throwaway targets)."""
    _REGISTRY.pop(name, None)


def _package_directory_targets() -> Tuple[str, ...]:
    """Subpackages of ``repro.targets`` carrying a ``target.json``."""
    root = os.path.dirname(os.path.abspath(__file__))
    found = []
    try:
        entries = sorted(os.listdir(root))
    except OSError:  # pragma: no cover - a broken install
        return ()
    for entry in entries:
        if os.path.isfile(os.path.join(root, entry, MANIFEST_NAME)):
            found.append(entry)
    return tuple(found)


def _discover() -> None:
    """Import target packages once (directory scan, env var, entry points).

    Thread-safe: concurrent catalogue queries (fleet agent threads all
    hitting ``get_target`` at once) serialize on a lock, and
    ``_discovered`` is only published after the scan completes, so no
    thread can observe a half-populated registry. A target package that
    calls back into the registry during its own import re-enters on the
    same thread and returns immediately (``_discovering``).
    """
    global _discovered, _discovering
    if _discovered:
        return
    with _discover_lock:
        if _discovered or _discovering:
            return
        _discovering = True
        try:
            _discover_locked()
        finally:
            _discovering = False
            _discovered = True


def _discover_locked() -> None:
    for subdir in _package_directory_targets():
        importlib.import_module("repro.targets.%s" % subdir)
    for module_name in os.environ.get(DISCOVERY_ENV, "").split(","):
        module_name = module_name.strip()
        if module_name:
            importlib.import_module(module_name)
    try:
        from importlib import metadata
    except ImportError:  # pragma: no cover - py<3.8 has no importlib.metadata
        return
    try:
        points = metadata.entry_points()
    except Exception:  # pragma: no cover - broken site metadata must not
        return         # take the built-in catalogue down with it
    if hasattr(points, "select"):  # py3.10+
        group = points.select(group=ENTRY_POINT_GROUP)
    else:  # py3.9 returns a plain dict
        group = points.get(ENTRY_POINT_GROUP, ())
    for point in group:
        loaded = point.load()
        # Loading the module usually registers as a side effect; a
        # callable entry point gets to finish its own registration.
        if callable(loaded) and not isinstance(loaded, type):
            loaded()


def get_target(name: str) -> TargetEntry:
    """Look up one registration; raises ``KeyError`` naming the catalogue."""
    _discover()
    try:
        return _REGISTRY[name]
    except KeyError:
        raise KeyError("unknown target %r; registered targets: %s"
                       % (name, ", ".join(sorted(_REGISTRY)) or "<none>"))


def create_target(name: str, **kwargs):
    """Instantiate the target registered under ``name``."""
    return get_target(name).target_cls(**kwargs)


def target_names() -> Tuple[str, ...]:
    """All registered target names, sorted."""
    _discover()
    return tuple(sorted(_REGISTRY))


def target_entries() -> Tuple[TargetEntry, ...]:
    """All registrations, sorted by name."""
    _discover()
    return tuple(_REGISTRY[name] for name in sorted(_REGISTRY))


def render_target_table() -> str:
    """The target catalogue as a markdown table (README regenerates from
    this via ``python -m repro targets``)."""
    rows = [
        ("`%s`" % entry.name, entry.protocol, str(entry.port),
         str(entry.manifest.config_surface.get("keys", "")),
         str(len(entry.manifest.bugs)), entry.description)
        for entry in target_entries()
    ]
    headers = ("Target", "Protocol", "Port", "Config keys", "Bugs",
               "Description")
    widths = [len(header) for header in headers]
    for row in rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))

    def line(cells):
        return "| %s |" % " | ".join(
            "%-*s" % (widths[i], cells[i]) for i in range(len(headers)))

    out = [line(headers),
           "|%s|" % "|".join("-" * (width + 2) for width in widths)]
    out.extend(line(row) for row in rows)
    return "\n".join(out)


class _TargetsView(Mapping):
    """Live read-only ``name -> target class`` view over the registry.

    Handed out by the deprecated ``repro.targets.target_registry()`` so
    every pre-registry call site (``registry[name]``, ``name in
    registry``, ``sorted(registry)``, ``.items()``) keeps working while
    drawing from the single catalogue.
    """

    def __getitem__(self, name: str) -> Callable:
        return get_target(name).target_cls

    def __iter__(self) -> Iterator[str]:
        return iter(target_names())

    def __len__(self) -> int:
        _discover()
        return len(_REGISTRY)

    def __repr__(self) -> str:
        return "TARGETS(%s)" % ", ".join(target_names())


#: The single shared mapping view (returned by ``target_registry()``).
TARGETS_VIEW = _TargetsView()
