"""Qpid-style AMQP 1.0 broker target."""

from repro.pits.amqp import state_model
from repro.targets.amqp.server import QpidTarget
from repro.targets.registry import load_manifest, register_target

MANIFEST = load_manifest(__file__)
register_target(MANIFEST.name, QpidTarget, state_model, MANIFEST)

__all__ = ["MANIFEST", "QpidTarget"]
