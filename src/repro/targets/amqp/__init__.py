"""Qpid-style AMQP 1.0 broker target."""

from repro.targets.amqp.server import QpidTarget

__all__ = ["QpidTarget"]
