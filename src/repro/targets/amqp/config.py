"""The Qpid-style configuration surface: an INI-flavoured ``qpidd.conf``.

AMQP's predefined structure limits exploration (per the paper), but the
broker still exposes worker threading, auth, flow-control and queue
sizing knobs whose combinations matter.
"""

from repro.core.entity import Flag
from repro.core.extraction import ConfigSources

CONFIG_FILE = """\
# qpidd.conf
port=5672
worker-threads=4
max-connections=500
connection-backlog=10
auth=no
mech-list=ANONYMOUS
queue-depth=1024
flow-control=yes
flow-stop-ratio=80
durable=no
store-dir=/var/lib/qpidd
mgmt-enable=yes
mgmt-pub-interval=10
heartbeat=0
max-frame-size=65536
session-max-unacked=5000
log-enable=notice
"""

ENTITY_OVERRIDES = {
    "mech-list": {"values": ("ANONYMOUS", "PLAIN", "ANONYMOUS PLAIN"),
                  "flag": Flag.MUTABLE},
    "log-enable": {"values": ("notice", "debug", "critical"),
                   "flag": Flag.MUTABLE},
    # worker-threads expands to include the oversubscribed value that
    # triggers the Table-II stack overflow.
    "worker-threads": {"values": (4, 0, 1, 8, 128)},
}


def config_sources() -> ConfigSources:
    return ConfigSources(files=(("qpidd.conf", CONFIG_FILE),))


DEFAULT_CONFIG = {
    "port": 5672,
    "worker-threads": 4,
    "max-connections": 500,
    "connection-backlog": 10,
    "auth": False,
    "mech-list": "ANONYMOUS",
    "queue-depth": 1024,
    "flow-control": True,
    "flow-stop-ratio": 80,
    "durable": False,
    "store-dir": "/var/lib/qpidd",
    "mgmt-enable": True,
    "mgmt-pub-interval": 10,
    "heartbeat": 0,
    "max-frame-size": 65536,
    "session-max-unacked": 5000,
    "log-enable": "notice",
}
