"""A Qpid-style AMQP 1.0 broker.

Parses the AMQP protocol header and frame stream (size / doff / type /
channel), dispatching on performative descriptor codes: open, begin,
attach, flow, transfer, disposition, detach, end, close, plus SASL frames
when ``auth=yes``. Carries Table II's AMQP bug: a stack-buffer-overflow
surfacing in ``pthread_create`` when the broker is configured with an
oversubscribed worker pool.
"""

from __future__ import annotations

from typing import Any, Dict

from repro.errors import StartupError
from repro.targets.amqp import config as amqp_config
from repro.targets.base import ProtocolTarget
from repro.targets.faults import FaultKind, SanitizerFault

_AMQP_HEADER = b"AMQP\x00\x01\x00\x00"
_SASL_HEADER = b"AMQP\x03\x01\x00\x00"

# Performative descriptor codes (AMQP 1.0 §2.7).
OPEN = 0x10
BEGIN = 0x11
ATTACH = 0x12
FLOW = 0x13
TRANSFER = 0x14
DISPOSITION = 0x15
DETACH = 0x16
END = 0x17
CLOSE = 0x18
SASL_INIT = 0x41

_MIN_MAX_FRAME = 512


class _ParseError(Exception):
    """Malformed frame; the broker closes with framing-error."""


class QpidTarget(ProtocolTarget):
    """The AMQP broker target."""

    NAME = "qpid"
    PROTOCOL = "AMQP"
    PORT = 5672

    @classmethod
    def config_sources(cls):
        return amqp_config.config_sources()

    @classmethod
    def entity_overrides(cls):
        return dict(amqp_config.ENTITY_OVERRIDES)

    @classmethod
    def default_config(cls) -> Dict[str, Any]:
        return dict(amqp_config.DEFAULT_CONFIG)

    # -- startup ---------------------------------------------------------

    def _startup_impl(self) -> None:
        cov = self.cov
        cov.hit("startup.enter")
        if self.enabled("auth") and not str(self.cfg("mech-list")).strip():
            cov.hit("startup.conflict.auth_no_mechs")
            raise StartupError("auth=yes requires mech-list", ("auth", "mech-list"))
        if int(self.cfg("max-frame-size")) < _MIN_MAX_FRAME:
            cov.hit("startup.bad_max_frame")
            raise StartupError("max-frame-size below AMQP minimum", ("max-frame-size",))
        ratio = int(self.cfg("flow-stop-ratio"))
        if self.enabled("flow-control") and not 0 < ratio <= 100:
            cov.hit("startup.conflict.bad_flow_ratio")
            raise StartupError(
                "flow-stop-ratio must be in (0, 100]",
                ("flow-control", "flow-stop-ratio"),
            )
        workers = int(self.cfg("worker-threads"))
        if cov.branch("startup.workers_auto", workers == 0):
            cov.hit("startup.workers_from_cores")
        elif workers > 64:
            cov.hit("startup.workers_oversubscribed")
            cov.hit("startup.workers_stack_guard_warning")
        if cov.branch("startup.auth", self.enabled("auth")):
            mechs = str(self.cfg("mech-list")).split()
            if "PLAIN" in mechs:
                cov.hit("startup.auth.plain")
            if "ANONYMOUS" in mechs:
                cov.hit("startup.auth.anonymous_allowed")
        if cov.branch("startup.durable", self.enabled("durable")):
            cov.hit("startup.store_open")
            if int(self.cfg("queue-depth")) > 4096:
                cov.hit("startup.store_large_journal")
        if cov.branch("startup.flow", self.enabled("flow-control")):
            cov.hit("startup.flow.thresholds")
            if ratio >= 95:
                cov.hit("startup.flow.late_stop")
        if cov.branch("startup.mgmt", self.enabled("mgmt-enable")):
            cov.hit("startup.mgmt.agent")
            if int(self.cfg("mgmt-pub-interval")) < 5:
                cov.hit("startup.mgmt.chatty")
        if int(self.cfg("heartbeat")) > 0:
            cov.hit("startup.heartbeat_on")
        # Broker-lifetime queue depth: survives connection resets.
        self._queued = 0
        cov.hit("startup.complete")

    # -- session ---------------------------------------------------------

    def reset_session(self) -> None:
        self._saw_header = False
        self._sasl_done = not self.enabled("auth") if self.config else True
        self._opened = False
        self._sessions: Dict[int, dict] = {}

    # -- parsing -----------------------------------------------------------

    def handle_packet(self, data: bytes) -> bytes:
        self.require_started()
        try:
            return self._dispatch(data)
        except _ParseError:
            self.cov.hit("packet.malformed")
            return b""

    def _dispatch(self, data: bytes) -> bytes:
        cov = self.cov
        if not self._saw_header:
            if cov.branch("header.sasl", data[:8] == _SASL_HEADER):
                if not self.enabled("auth"):
                    cov.hit("header.sasl_unexpected")
                    return _AMQP_HEADER  # downgrade
                self._saw_header = True
                return _SASL_HEADER
            if cov.branch("header.plain", data[:8] == _AMQP_HEADER):
                if self.enabled("auth") and not self._sasl_done:
                    cov.hit("header.auth_required")
                    return _SASL_HEADER
                self._saw_header = True
                return _AMQP_HEADER
            cov.hit("header.garbage")
            raise _ParseError("bad protocol header")
        return self._handle_frame(data)

    def _handle_frame(self, data: bytes) -> bytes:
        cov = self.cov
        if len(data) < 8:
            cov.hit("frame.runt")
            raise _ParseError("short frame header")
        size = int.from_bytes(data[0:4], "big")
        doff = data[4]
        frame_type = data[5]
        channel = int.from_bytes(data[6:8], "big")
        if cov.branch("frame.size_mismatch", size != len(data)):
            if size > len(data):
                raise _ParseError("frame truncated")
        if size > int(self.cfg("max-frame-size")):
            cov.hit("frame.over_max")
            return b""
        if cov.branch("frame.bad_doff", doff < 2):
            raise _ParseError("doff below minimum")
        body_start = doff * 4
        if body_start > len(data):
            cov.hit("frame.doff_past_end")
            raise _ParseError("doff beyond frame")
        body = data[body_start:]
        if cov.branch("frame.heartbeat", not body):
            if int(self.cfg("heartbeat")) == 0:
                cov.hit("frame.heartbeat_unexpected")
            return b""
        if frame_type == 1:
            cov.hit("frame.sasl_type")
            return self._handle_sasl(body)
        if cov.branch("frame.unknown_type", frame_type != 0):
            raise _ParseError("unknown frame type")
        return self._handle_performative(channel, body)

    def _handle_sasl(self, body: bytes) -> bytes:
        cov = self.cov
        if not self.enabled("auth"):
            cov.hit("sasl.disabled")
            return b""
        if len(body) < 2 or body[0] != 0x00:
            cov.hit("sasl.bad_descriptor")
            raise _ParseError("bad SASL descriptor")
        code = body[1]
        if cov.branch("sasl.init", code == SASL_INIT):
            mechanism = body[2:].split(b"\x00", 1)[0].decode("ascii", "replace")
            mechs = str(self.cfg("mech-list")).split()
            if cov.branch("sasl.mech_allowed", mechanism in mechs):
                if mechanism == "PLAIN":
                    cov.hit("sasl.plain_credentials")
                self._sasl_done = True
                return b"\x00\x44\x00"  # sasl-outcome ok
            cov.hit("sasl.mech_rejected")
            return b"\x00\x44\x01"
        cov.hit("sasl.unknown_code")
        return b""

    def _handle_performative(self, channel: int, body: bytes) -> bytes:
        cov = self.cov
        if len(body) < 2 or body[0] != 0x00:
            cov.hit("perf.bad_descriptor")
            raise _ParseError("bad descriptor")
        code = body[1]
        args = body[2:]
        if code == OPEN:
            cov.hit("perf.open")
            if cov.branch("perf.open_dup", self._opened):
                raise _ParseError("second open")
            if self.enabled("auth") and not self._sasl_done:
                cov.hit("perf.open_before_sasl")
                raise _ParseError("open before SASL")
            self._opened = True
            workers = int(self.cfg("worker-threads"))
            if workers > 64:
                # Bug #9 (Table II): stack-buffer-overflow in
                # pthread_create. Spawning the oversubscribed worker pool
                # for the new connection overflows the attr stack array.
                raise SanitizerFault(
                    FaultKind.STACK_BUFFER_OVERFLOW,
                    "pthread_create",
                    "worker pool of %d threads overflows attr array" % workers,
                )
            if cov.branch("perf.open_idle_timeout", len(args) >= 4):
                cov.hit("perf.open_args")
            return self._frame(OPEN)
        if cov.branch("perf.before_open", not self._opened):
            raise _ParseError("performative before open")
        if code == BEGIN:
            cov.hit("perf.begin")
            if cov.branch("perf.begin_dup", channel in self._sessions):
                raise _ParseError("channel already begun")
            self._sessions[channel] = {"links": set(), "unacked": 0}
            return self._frame(BEGIN)
        if code == CLOSE:
            cov.hit("perf.close")
            self._opened = False
            self._sessions.clear()
            return self._frame(CLOSE)
        session = self._sessions.get(channel)
        if cov.branch("perf.no_session", session is None):
            if code == END:
                cov.hit("perf.end_unknown_channel")
                return b""
            raise _ParseError("performative on unbegun channel")
        if code == ATTACH:
            cov.hit("perf.attach")
            handle = args[0] if args else 0
            if cov.branch("perf.attach_dup", handle in session["links"]):
                raise _ParseError("handle in use")
            session["links"].add(handle)
            if cov.branch("perf.attach_durable", self.enabled("durable") and len(args) > 1 and args[1] & 0x01):
                cov.hit("perf.attach_durable_link")
            return self._frame(ATTACH)
        if code == FLOW:
            cov.hit("perf.flow")
            if self.enabled("flow-control"):
                depth = int(self.cfg("queue-depth"))
                ratio = int(self.cfg("flow-stop-ratio"))
                if cov.branch("perf.flow_stop",
                              self._queued * 100 >= depth * ratio):
                    cov.hit("perf.flow_stopped")
            return b""
        if code == TRANSFER:
            cov.hit("perf.transfer")
            handle = args[0] if args else 0
            if cov.branch("perf.transfer_no_link", handle not in session["links"]):
                raise _ParseError("transfer on unattached handle")
            payload = args[2:]
            if cov.branch("perf.transfer_empty", not payload):
                cov.hit("perf.transfer_empty_body")
            elif payload.startswith(b"qmf:"):
                return self._handle_management(payload)
            elif payload[:1] == b"\x00":
                cov.hit("perf.transfer_described_body")
            elif len(payload) > 256:
                cov.hit("perf.transfer_large_body")
            else:
                cov.hit("perf.transfer_raw_body")
            self._queued += 1
            session["unacked"] += 1
            if session["unacked"] > int(self.cfg("session-max-unacked")):
                cov.hit("perf.transfer_unacked_overflow")
                raise _ParseError("too many unacked transfers")
            if cov.branch("perf.transfer_settled", len(args) > 1 and bool(args[1] & 0x01)):
                session["unacked"] -= 1
            if self.enabled("durable"):
                cov.hit("perf.transfer_journaled")
            depth = int(self.cfg("queue-depth"))
            if cov.branch("perf.queue_full", depth > 0 and self._queued > depth):
                return self._frame(DETACH)
            return self._frame(DISPOSITION)
        if code == DISPOSITION:
            cov.hit("perf.disposition")
            if session["unacked"] > 0:
                session["unacked"] -= 1
                cov.hit("perf.disposition_settles")
            return b""
        if code == DETACH:
            cov.hit("perf.detach")
            handle = args[0] if args else 0
            if cov.branch("perf.detach_known", handle in session["links"]):
                session["links"].discard(handle)
            return self._frame(DETACH)
        if code == END:
            cov.hit("perf.end")
            del self._sessions[channel]
            return self._frame(END)
        cov.hit("perf.unknown_code")
        raise _ParseError("unknown performative 0x%02x" % code)

    def _handle_management(self, payload: bytes) -> bytes:
        """QMF-style management queries carried in transfer bodies."""
        cov = self.cov
        cov.hit("mgmt.query")
        if not self.enabled("mgmt-enable"):
            cov.hit("mgmt.disabled_refused")
            return self._frame(DETACH)
        command = payload[4:].split(b" ", 1)[0].decode("ascii", "replace")
        if cov.branch("mgmt.get_objects", command == "getObjects"):
            cov.hit("mgmt.objects_reply")
            if int(self.cfg("mgmt-pub-interval")) < 5:
                cov.hit("mgmt.fresh_snapshot")
            return self._frame(DISPOSITION)
        if command == "getSchema":
            cov.hit("mgmt.schema_reply")
            return self._frame(DISPOSITION)
        if command == "method":
            cov.hit("mgmt.method_call")
            if self.enabled("auth"):
                cov.hit("mgmt.method_auth_check")
            return self._frame(DISPOSITION)
        cov.hit("mgmt.unknown_command")
        raise _ParseError("unknown management command %r" % command)

    def _frame(self, code: int) -> bytes:
        body = bytes([0x00, code])
        size = 8 + len(body)
        return size.to_bytes(4, "big") + bytes([2, 0, 0, 0]) + body
