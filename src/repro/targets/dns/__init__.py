"""Dnsmasq-style DNS server target."""

from repro.targets.dns.server import DnsmasqTarget

__all__ = ["DnsmasqTarget"]
