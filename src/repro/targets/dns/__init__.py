"""Dnsmasq-style DNS server target."""

from repro.pits.dns import state_model
from repro.targets.dns.server import DnsmasqTarget
from repro.targets.registry import load_manifest, register_target

MANIFEST = load_manifest(__file__)
register_target(MANIFEST.name, DnsmasqTarget, state_model, MANIFEST)

__all__ = ["DnsmasqTarget", "MANIFEST"]
