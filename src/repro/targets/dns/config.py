"""The dnsmasq-style configuration surface: a custom directive format.

``dnsmasq.conf`` mixes bare switch directives (``domain-needed``) with
``key=value`` directives — the paper's "custom format" case, handled by
the heuristic extractor with configurable rules.
"""

from repro.core.entity import Flag
from repro.core.extraction import ConfigSources

CONFIG_FILE = """\
# dnsmasq.conf - custom directive format
domain-needed
bogus-priv
filterwin2k
stop-dns-rebind
rebind-localhost-ok
expand-hosts
no-hosts
log-queries
dnssec
cache-size=150
neg-ttl=3600
local-ttl=0
min-port=1024
max-port=65000
edns-packet-max=1232
dns-forward-max=150
domain=lan
server=8.8.8.8
addn-hosts=/etc/dnsmasq.hosts
resolv-file=/etc/resolv.conf
"""

#: Bare directives are off by default and toggled on by presence; the
#: custom extractor sees them with no value, so they infer as Boolean.
_BARE_SWITCHES = (
    "domain-needed", "bogus-priv", "filterwin2k", "stop-dns-rebind",
    "rebind-localhost-ok", "expand-hosts", "no-hosts", "log-queries",
    "dnssec",
)

ENTITY_OVERRIDES = {
    "domain": {"values": ("lan", "", "home.arpa"), "flag": Flag.MUTABLE},
    "server": {"flag": Flag.IMMUTABLE},
}


def config_sources() -> ConfigSources:
    return ConfigSources(files=(("dnsmasq.conf", CONFIG_FILE),))


DEFAULT_CONFIG = {
    "domain-needed": False,
    "bogus-priv": False,
    "filterwin2k": False,
    "stop-dns-rebind": False,
    "rebind-localhost-ok": False,
    "expand-hosts": False,
    "no-hosts": False,
    "log-queries": False,
    "dnssec": False,
    "cache-size": 150,
    "neg-ttl": 3600,
    "local-ttl": 0,
    "min-port": 1024,
    "max-port": 65000,
    "edns-packet-max": 1232,
    "dns-forward-max": 150,
    "domain": "lan",
    "server": "8.8.8.8",
    "addn-hosts": "/etc/dnsmasq.hosts",
    "resolv-file": "/etc/resolv.conf",
}
