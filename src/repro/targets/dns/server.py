"""A dnsmasq-style DNS server.

Parses DNS queries (RFC 1035): the 12-byte header, question section with
compression pointers, known RR types, plus EDNS0 OPT records. Behaviour
is heavily configuration-gated (caching, rebind protection, win2k
filtering, DNSSEC validation, query logging) — dnsmasq is the paper's
strongest CMFuzz subject (+52.9%) for exactly this reason. Carries the
five DNS bugs of Table II.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from repro.errors import StartupError
from repro.targets.base import ProtocolTarget
from repro.targets.dns import config as dns_config
from repro.targets.faults import FaultKind, SanitizerFault

# Record types.
TYPE_A = 1
TYPE_NS = 2
TYPE_CNAME = 5
TYPE_SOA = 6
TYPE_PTR = 12
TYPE_MX = 15
TYPE_TXT = 16
TYPE_AAAA = 28
TYPE_SRV = 33
TYPE_OPT = 41
TYPE_RRSIG = 46
TYPE_ANY = 255

_KNOWN_TYPES = frozenset(
    (TYPE_A, TYPE_NS, TYPE_CNAME, TYPE_SOA, TYPE_PTR, TYPE_MX, TYPE_TXT,
     TYPE_AAAA, TYPE_SRV, TYPE_OPT, TYPE_RRSIG, TYPE_ANY)
)

_RCODE_FORMERR = 1
_RCODE_NXDOMAIN = 3
_RCODE_NOTIMP = 4
_RCODE_REFUSED = 5

_LOCAL_HOSTS = {"router.lan": "192.168.1.1", "printer.lan": "192.168.1.9"}


class _ParseError(Exception):
    """Malformed query; the server answers FORMERR."""


class DnsmasqTarget(ProtocolTarget):
    """The DNS server target."""

    NAME = "dnsmasq"
    PROTOCOL = "DNS"
    PORT = 53

    @classmethod
    def config_sources(cls):
        return dns_config.config_sources()

    @classmethod
    def entity_overrides(cls):
        return dict(dns_config.ENTITY_OVERRIDES)

    @classmethod
    def default_config(cls) -> Dict[str, Any]:
        return dict(dns_config.DEFAULT_CONFIG)

    # -- startup ---------------------------------------------------------

    def _startup_impl(self) -> None:
        cov = self.cov
        cov.hit("startup.enter")
        if int(self.cfg("min-port")) > int(self.cfg("max-port")):
            cov.hit("startup.conflict.port_range")
            raise StartupError("min-port exceeds max-port", ("min-port", "max-port"))
        if self.enabled("dnssec") and int(self.cfg("edns-packet-max")) < 512:
            cov.hit("startup.conflict.dnssec_small_edns")
            raise StartupError(
                "dnssec requires edns-packet-max >= 512",
                ("dnssec", "edns-packet-max"),
            )
        if self.enabled("rebind-localhost-ok") and not self.enabled("stop-dns-rebind"):
            cov.hit("startup.conflict.rebind_ok_without_stop")
            raise StartupError(
                "rebind-localhost-ok requires stop-dns-rebind",
                ("rebind-localhost-ok", "stop-dns-rebind"),
            )
        # Bug #14 (Table II): heap-buffer-overflow in config_parse. With
        # expand-hosts on and an empty domain, the domain suffix append
        # writes past the empty buffer while reparsing the hosts file.
        if self.enabled("expand-hosts"):
            cov.hit("startup.expand_hosts")
            if not str(self.cfg("domain")):
                raise SanitizerFault(
                    FaultKind.HEAP_BUFFER_OVERFLOW,
                    "config_parse",
                    "domain suffix append overruns empty domain buffer",
                )
            if self.enabled("no-hosts"):
                cov.hit("startup.expand_without_hosts")
        if cov.branch("startup.cache", int(self.cfg("cache-size")) > 0):
            cov.hit("startup.cache_alloc")
            if int(self.cfg("cache-size")) > 10000:
                cov.hit("startup.cache_huge")
            if int(self.cfg("neg-ttl")) == 0:
                cov.hit("startup.no_negative_cache")
        else:
            cov.hit("startup.cache_disabled")
        if cov.branch("startup.dnssec", self.enabled("dnssec")):
            cov.hit("startup.dnssec.trust_anchors")
            if int(self.cfg("cache-size")) == 0:
                cov.hit("startup.dnssec.uncached")
        if cov.branch("startup.rebind", self.enabled("stop-dns-rebind")):
            cov.hit("startup.rebind.filters")
            if self.enabled("rebind-localhost-ok"):
                cov.hit("startup.rebind.localhost_exempt")
        if self.enabled("filterwin2k"):
            cov.hit("startup.filterwin2k")
        if self.enabled("domain-needed"):
            cov.hit("startup.domain_needed")
        if self.enabled("bogus-priv"):
            cov.hit("startup.bogus_priv")
        if cov.branch("startup.hosts", not self.enabled("no-hosts")):
            cov.hit("startup.hosts_load")
        if self.enabled("log-queries"):
            cov.hit("startup.log_queries")
        if int(self.cfg("dns-forward-max")) == 0:
            cov.hit("startup.forwarding_disabled")
        # Server-lifetime state: the answer cache and forwarding counter
        # survive client reconnects.
        self._cache: Dict[Tuple[str, int], str] = {}
        self._forwarded = 0
        cov.hit("startup.complete")

    # -- session ---------------------------------------------------------

    def reset_session(self) -> None:
        """DNS is connectionless; nothing is tied to a client session."""

    # -- parsing -----------------------------------------------------------

    def handle_packet(self, data: bytes) -> bytes:
        self.require_started()
        try:
            return self._dispatch(data)
        except _ParseError:
            self.cov.hit("packet.malformed")
            return self._error_reply(data, _RCODE_FORMERR)

    def _dispatch(self, data: bytes) -> bytes:
        cov = self.cov
        if len(data) < 12:
            cov.hit("packet.runt")
            if cov.branch("packet.header_overread", len(data) >= 10):
                # Bug #10 (Table II): stack-buffer-overflow in get16bits —
                # the qdcount read at offset 10 runs past an 10/11-byte
                # datagram.
                raise SanitizerFault(
                    FaultKind.STACK_BUFFER_OVERFLOW,
                    "get16bits",
                    "qdcount read past %d-byte packet" % len(data),
                )
            raise _ParseError("short header")
        flags = int.from_bytes(data[2:4], "big")
        qr = flags >> 15
        opcode = (flags >> 11) & 0x0F
        rd = (flags >> 8) & 0x01
        qdcount = int.from_bytes(data[4:6], "big")
        ancount = int.from_bytes(data[6:8], "big")
        arcount = int.from_bytes(data[10:12], "big")
        if cov.branch("packet.response_inbound", qr == 1):
            return b""
        if cov.branch("packet.opcode_notimp", opcode not in (0, 4)):
            return self._error_reply(data, _RCODE_NOTIMP)
        if cov.branch("packet.zero_questions", qdcount == 0):
            return self._error_reply(data, _RCODE_FORMERR)
        if qdcount > 1024 and int(self.cfg("edns-packet-max")) > 8192:
            # Bug #12 (Table II): allocation-size-too-big in
            # dns_request_parse — a huge qdcount times the per-question
            # struct size with jumbo EDNS buffers configured.
            raise SanitizerFault(
                FaultKind.ALLOCATION_SIZE_TOO_BIG,
                "dns_request_parse",
                "allocating %d question slots" % qdcount,
            )
        if cov.branch("packet.multi_question", qdcount > 1):
            if qdcount > 32:
                cov.hit("packet.qdcount_flood")
                raise _ParseError("unreasonable qdcount")
        if ancount:
            cov.hit("packet.answers_in_query")
        position = 12
        replies: List[bytes] = []
        for _ in range(min(qdcount, 32)):
            qname, position = self._parse_name(data, position)
            if position + 4 > len(data):
                # Bug #11 (Table II): heap-buffer-overflow in
                # dns_question_parse / dns_request_parse — qtype/qclass
                # read past the question buffer.
                cov.hit("question.truncated_tail")
                raise SanitizerFault(
                    FaultKind.HEAP_BUFFER_OVERFLOW,
                    "dns_question_parse, dns_request_parse",
                    "qtype read past end of question section",
                )
            qtype = int.from_bytes(data[position : position + 2], "big")
            qclass = int.from_bytes(data[position + 2 : position + 4], "big")
            position += 4
            replies.append(self._answer_question(data, qname, qtype, qclass, rd))
        if cov.branch("packet.edns", arcount > 0 and position < len(data)):
            self._parse_edns(data, position)
        return replies[0] if replies else self._error_reply(data, _RCODE_FORMERR)

    def _parse_name(self, data: bytes, position: int) -> Tuple[str, int]:
        """Parse a possibly-compressed domain name."""
        cov = self.cov
        labels: List[str] = []
        jumps = 0
        end: Optional[int] = None
        while True:
            if position >= len(data):
                cov.hit("name.truncated")
                raise _ParseError("name runs past packet")
            length = data[position]
            if cov.branch("name.compressed", length & 0xC0 == 0xC0):
                if position + 1 >= len(data):
                    raise _ParseError("truncated pointer")
                pointer = ((length & 0x3F) << 8) | data[position + 1]
                jumps += 1
                if cov.branch("name.pointer_loop", jumps > 8):
                    raise _ParseError("compression loop")
                if pointer >= position:
                    cov.hit("name.forward_pointer")
                    raise _ParseError("forward compression pointer")
                if end is None:
                    end = position + 2
                position = pointer
                continue
            if length & 0xC0:
                cov.hit("name.reserved_label_bits")
                raise _ParseError("reserved label length bits")
            position += 1
            if length == 0:
                break
            if position + length > len(data):
                cov.hit("name.label_overflow")
                raise _ParseError("label past packet end")
            if cov.branch("name.long_label", length > 63):
                raise _ParseError("label too long")
            labels.append(data[position : position + length].decode("ascii", "replace"))
            position += length
            if cov.branch("name.too_long", sum(len(l) + 1 for l in labels) > 255):
                raise _ParseError("name too long")
        name = ".".join(labels)
        return name, (end if end is not None else position)

    def _answer_question(self, data: bytes, qname: str, qtype: int,
                         qclass: int, rd: int) -> bytes:
        cov = self.cov
        if cov.branch("question.bad_class", qclass not in (1, 255)):
            return self._error_reply(data, _RCODE_REFUSED)
        cov.hit("question.type.%d" % qtype if qtype in _KNOWN_TYPES
                else "question.type.other")
        if self.enabled("log-queries"):
            cov.hit("question.logged")
            if cov.branch("question.log_format", "%" in qname):
                # Bug #13 (Table II): heap-buffer-overflow in
                # printf_common — the query name is passed to the log
                # formatter as the format string.
                raise SanitizerFault(
                    FaultKind.HEAP_BUFFER_OVERFLOW,
                    "printf_common",
                    "format directives in logged query name %r" % qname[:32],
                )
        if cov.branch("question.domain_needed",
                      self.enabled("domain-needed") and "." not in qname):
            return self._error_reply(data, _RCODE_REFUSED)
        if self.enabled("filterwin2k"):
            if cov.branch("question.win2k_filtered",
                          qtype in (TYPE_SOA, TYPE_SRV, TYPE_ANY) and
                          qname.startswith("_")):
                return self._error_reply(data, _RCODE_REFUSED)
        if qtype == TYPE_PTR:
            return self._answer_ptr(data, qname)
        if cov.branch("question.any_amplification", qtype == TYPE_ANY):
            cov.hit("question.any_refused")
            return self._error_reply(data, _RCODE_REFUSED)
        if qtype == TYPE_RRSIG and not self.enabled("dnssec"):
            cov.hit("question.rrsig_without_dnssec")
            return self._error_reply(data, _RCODE_REFUSED)
        return self._resolve(data, qname, qtype, rd)

    def _answer_ptr(self, data: bytes, qname: str) -> bytes:
        cov = self.cov
        cov.hit("ptr.enter")
        if cov.branch("ptr.bogus_priv",
                      self.enabled("bogus-priv") and
                      (qname.endswith("10.in-addr.arpa") or
                       qname.endswith("168.192.in-addr.arpa"))):
            cov.hit("ptr.private_nxdomain")
            return self._error_reply(data, _RCODE_NXDOMAIN)
        return self._reply(data, "host.ptr", ttl=int(self.cfg("local-ttl")) or 60)

    def _resolve(self, data: bytes, qname: str, qtype: int, rd: int) -> bytes:
        cov = self.cov
        cache_size = int(self.cfg("cache-size"))
        key = (qname, qtype)
        if cov.branch("resolve.cached",
                      cache_size > 0 and key in self._cache):
            cov.hit("resolve.cache_hit")
            return self._reply(data, self._cache[key], ttl=int(self.cfg("local-ttl")) or 300)
        full = qname
        if self.enabled("expand-hosts") and "." not in qname:
            cov.hit("resolve.expanded")
            full = qname + "." + str(self.cfg("domain"))
        if cov.branch("resolve.local_hosts",
                      not self.enabled("no-hosts") and full in _LOCAL_HOSTS):
            address = _LOCAL_HOSTS[full]
            if self._check_rebind(address):
                return self._error_reply(data, _RCODE_REFUSED)
            if cache_size > 0:
                self._store_cache(key, address)
            return self._reply(data, address, ttl=int(self.cfg("local-ttl")) or 0)
        if cov.branch("resolve.local_domain",
                      full.endswith("." + str(self.cfg("domain"))) and
                      bool(str(self.cfg("domain")))):
            cov.hit("resolve.authoritative_nxdomain")
            if int(self.cfg("neg-ttl")) > 0 and cache_size > 0:
                cov.hit("resolve.negative_cached")
            else:
                cov.hit("resolve.negative_uncached")
            return self._error_reply(data, _RCODE_NXDOMAIN)
        if cov.branch("resolve.no_recursion", rd == 0):
            return self._error_reply(data, _RCODE_REFUSED)
        limit = int(self.cfg("dns-forward-max"))
        self._forwarded += 1
        if cov.branch("resolve.forward_limit", limit > 0 and self._forwarded > limit):
            cov.hit("resolve.forward_refused")
            # The in-flight window drains; new forwards are admitted again.
            self._forwarded = 0
            return self._error_reply(data, _RCODE_REFUSED)
        cov.hit("resolve.forwarded")
        address = "93.184.216.34"
        if self._check_rebind(address):
            return self._error_reply(data, _RCODE_REFUSED)
        if self.enabled("dnssec"):
            cov.hit("resolve.dnssec_validate")
            if qtype == TYPE_RRSIG:
                cov.hit("resolve.rrsig_served")
            elif qtype in (TYPE_A, TYPE_AAAA):
                cov.hit("resolve.dnssec.address_chain")
            elif qtype in (TYPE_MX, TYPE_SRV, TYPE_TXT):
                cov.hit("resolve.dnssec.rr_chain")
            else:
                cov.hit("resolve.dnssec.other_chain")
            if int(self.cfg("edns-packet-max")) < 1232:
                cov.hit("resolve.dnssec.small_buffer_tcp_retry")
        if cache_size > 0:
            self._store_cache(key, address)
        if qtype == TYPE_TXT:
            # TXT answers are large (SPF/DKIM blobs) and are what trips
            # the TC-bit path against the configured datagram limit.
            cov.hit("resolve.txt_blob")
            return self._reply(data, "v=spf1 include:example.com ~all " * 64,
                               ttl=300)
        return self._reply(data, address, ttl=300)

    def _check_rebind(self, address: str) -> bool:
        cov = self.cov
        if not self.enabled("stop-dns-rebind"):
            return False
        private = address.startswith(("10.", "192.168.", "172.16.", "127."))
        if cov.branch("rebind.private_answer", private):
            if address.startswith("127.") and self.enabled("rebind-localhost-ok"):
                cov.hit("rebind.localhost_allowed")
                return False
            cov.hit("rebind.blocked")
            return True
        return False

    def _store_cache(self, key: Tuple[str, int], value: str) -> None:
        cov = self.cov
        if len(self._cache) >= int(self.cfg("cache-size")):
            cov.hit("cache.evict")
            self._cache.pop(next(iter(self._cache)))
        self._cache[key] = value

    def _parse_edns(self, data: bytes, position: int) -> None:
        cov = self.cov
        cov.hit("edns.enter")
        # OPT RR: root name (1 byte), type (2), class = udp size (2).
        if position + 5 > len(data):
            cov.hit("edns.truncated")
            raise _ParseError("truncated OPT record")
        if data[position] != 0:
            cov.hit("edns.nonroot_name")
            return
        rtype = int.from_bytes(data[position + 1 : position + 3], "big")
        if cov.branch("edns.is_opt", rtype == TYPE_OPT):
            udp_size = int.from_bytes(data[position + 3 : position + 5], "big")
            if cov.branch("edns.udp_capped",
                          udp_size > int(self.cfg("edns-packet-max"))):
                cov.hit("edns.size_clamped")
            if self.enabled("dnssec"):
                cov.hit("edns.dnssec_do")

    # -- replies -----------------------------------------------------------

    def _reply(self, query: bytes, value: str, ttl: int) -> bytes:
        cov = self.cov
        cov.hit("reply.answer")
        payload = value.encode("ascii", "replace") + ttl.to_bytes(4, "big")
        limit = int(self.cfg("edns-packet-max"))
        if cov.branch("reply.truncated", limit > 0 and 12 + len(payload) > limit):
            # Answer exceeds the advertised datagram size: set TC and
            # return the bare header (client would retry over TCP).
            cov.hit("reply.tc_bit_set")
            return query[0:2] + b"\x83\x80" + query[4:6] + bytes(6)
        header = query[0:2] + b"\x81\x80" + query[4:6] + b"\x00\x01" + bytes(4)
        return header + payload

    def _error_reply(self, query: bytes, rcode: int) -> bytes:
        self.cov.hit("reply.rcode.%d" % rcode)
        ident = query[0:2] if len(query) >= 2 else b"\x00\x00"
        return ident + bytes([0x81, 0x80 | rcode]) + bytes(8)
