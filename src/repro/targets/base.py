"""Base class shared by the six protocol targets.

A target is a configurable protocol server with explicit branch-coverage
instrumentation. Its lifecycle mirrors a real SUT under a fuzzing
harness:

1. :meth:`startup` — apply a configuration assignment over the defaults,
   validate it (conflicting combinations raise
   :class:`~repro.errors.StartupError`), and execute the instrumented
   initialisation logic whose coverage the relation quantifier measures;
2. :meth:`handle_packet` — parse one protocol message inside the current
   session, hitting branch sites and possibly raising a
   :class:`~repro.targets.faults.SanitizerFault` when an injected bug's
   trigger condition is met;
3. :meth:`reset_session` — drop per-connection state after a crash or at
   the start of a new fuzzing iteration.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Optional

from repro.core.extraction import ConfigSources
from repro.coverage.bitmap import CoverageMap
from repro.coverage.collector import CoverageCollector, make_collector
from repro.errors import StartupError, TargetError


class ProtocolTarget:
    """Abstract configurable protocol server."""

    #: Implementation name (e.g. ``"mosquitto"``).
    NAME = "abstract"
    #: Protocol name as used in Table II (e.g. ``"MQTT"``).
    PROTOCOL = "NONE"
    #: Default listen port.
    PORT = 0

    def __init__(self, collector: Optional[CoverageCollector] = None):
        self.cov = collector or make_collector(self.NAME)
        self.config: Dict[str, Any] = {}
        self.started = False

    # -- configuration surface ------------------------------------------------

    @classmethod
    def config_sources(cls) -> ConfigSources:
        """The raw configuration sources identification consumes."""
        raise NotImplementedError

    @classmethod
    def entity_overrides(cls) -> Dict[str, dict]:
        """Optional per-item overrides for entity construction."""
        return {}

    @classmethod
    def default_config(cls) -> Dict[str, Any]:
        """The default (out-of-the-box) configuration assignment."""
        raise NotImplementedError

    # -- lifecycle -------------------------------------------------------------

    def startup(self, assignment: Optional[Dict[str, Any]] = None) -> None:
        """Start the server with ``assignment`` layered over the defaults."""
        merged = dict(self.default_config())
        unknown = [name for name in (assignment or {}) if name not in merged]
        if unknown:
            raise StartupError(
                "unknown configuration keys: %s" % ", ".join(sorted(unknown)),
                conflicting=unknown,
            )
        merged.update(assignment or {})
        if "port" in merged:
            try:
                port = int(merged["port"])
            except (TypeError, ValueError):
                raise StartupError("port is not numeric", ("port",))
            if not 0 < port < 65536:
                raise StartupError("port %d out of range" % port, ("port",))
        self.config = merged
        self._startup_impl()
        self.started = True
        self.reset_session()

    def _startup_impl(self) -> None:
        """Instrumented initialisation; raises StartupError on conflicts."""
        raise NotImplementedError

    def handle_packet(self, data: bytes) -> bytes:
        """Parse and process one inbound protocol message."""
        raise NotImplementedError

    def reset_session(self) -> None:
        """Drop per-connection protocol state."""

    def require_started(self) -> None:
        if not self.started:
            raise TargetError("%s target used before startup()" % self.NAME)

    # -- helpers ---------------------------------------------------------------

    def cfg(self, name: str) -> Any:
        """Current value of a configuration key."""
        try:
            return self.config[name]
        except KeyError:
            raise TargetError("unknown configuration key %r" % name)

    def enabled(self, name: str) -> bool:
        """Truthiness of a boolean-ish configuration key."""
        value = self.cfg(name)
        if isinstance(value, str):
            return value.strip().lower() in ("true", "yes", "on", "1")
        return bool(value)


#: A zero-argument callable producing a fresh target instance.
TargetFactory = Callable[[], ProtocolTarget]


def startup_probe_for(
    factory: TargetFactory, on_fault: Optional[Callable] = None
) -> Callable[[Dict[str, Any]], CoverageMap]:
    """Build the startup probe the relation quantifier consumes.

    Each probe call starts a *fresh* target instance with the given
    partial assignment and returns the startup coverage; startup
    failures propagate as :class:`StartupError` (the quantifier maps
    them to zero coverage).

    Args:
        factory: Produces fresh target instances.
        on_fault: Optional callback for sanitizer faults raised *during
            startup* — a configuration combination that crashes the
            target is both a finding and a failed launch. When given, the
            fault is passed to the callback and the probe reports a
            startup failure; when omitted, the fault propagates.
    """

    def probe(assignment: Dict[str, Any]) -> CoverageMap:
        target = factory()
        target.cov.start_run()
        try:
            target.startup(assignment)
        except StartupError:
            raise
        except Exception as fault:
            from repro.targets.faults import SanitizerFault

            if on_fault is not None and isinstance(fault, SanitizerFault):
                on_fault(fault)
                raise StartupError(str(fault), tuple(assignment))
            raise
        return target.cov.end_run()

    return probe
