"""HTTP-ish REST device-API target."""

from repro.targets.registry import load_manifest, register_target
from repro.targets.restapi.pit import state_model
from repro.targets.restapi.server import RestApiTarget

MANIFEST = load_manifest(__file__)
register_target(MANIFEST.name, RestApiTarget, state_model, MANIFEST)

__all__ = ["MANIFEST", "RestApiTarget"]
