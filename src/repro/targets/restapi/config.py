"""The REST device-API configuration surface: flat ``key value`` format.

``restapi.conf`` mirrors the embedded-httpd style of IoT device web
servers (auth token, CORS, rate limiting, firmware upload) — every
deep code path below is gated on one of these keys.
"""

from repro.core.entity import Flag
from repro.core.extraction import ConfigSources

CONFIG_FILE = """\
# restapi.conf - device REST API configuration
port 8080
api_prefix /api
auth_required false
auth_token
max_body_size 4096
strict_content_length true
keepalive false
keepalive_max 100
cors_enabled false
cors_origin *
rate_limit 0
debug_endpoints false
tls_enabled false
tls_cert
compress_responses false
url_decode false
max_header_count 32
firmware_upload false
"""

ENTITY_OVERRIDES = {
    # Presence of a token value switches the whole auth code path.
    "auth_token": {"values": ("", "s3cr3t-device-token"), "flag": Flag.MUTABLE},
    "tls_cert": {"values": ("", "/etc/device/server.pem"), "flag": Flag.MUTABLE},
    "api_prefix": {"values": ("/api", "/v2"), "flag": Flag.MUTABLE},
    "cors_origin": {"values": ("*", "https://cloud.example"), "flag": Flag.MUTABLE},
}


def config_sources() -> ConfigSources:
    return ConfigSources(files=(("restapi.conf", CONFIG_FILE),))


DEFAULT_CONFIG = {
    "port": 8080,
    "api_prefix": "/api",
    "auth_required": False,
    "auth_token": "",
    "max_body_size": 4096,
    "strict_content_length": True,
    "keepalive": False,
    "keepalive_max": 100,
    "cors_enabled": False,
    "cors_origin": "*",
    "rate_limit": 0,
    "debug_endpoints": False,
    "tls_enabled": False,
    "tls_cert": "",
    "compress_responses": False,
    "url_decode": False,
    "max_header_count": 32,
    "firmware_upload": False,
}
