"""An HTTP/1.1-ish REST device API target.

Parses text HTTP requests (request line, header block, optional body)
against a small device resource tree (``/api/status``, ``/api/sensors``,
``/api/actuators``, ``/api/config``, ``/api/firmware``, ``/debug``).
Behaviour is heavily configuration-gated — bearer auth, CORS preflight,
rate limiting, percent-decoding, firmware upload — and carries four
injected bugs, each reachable only under a non-default configuration.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from repro.errors import StartupError
from repro.targets.base import ProtocolTarget
from repro.targets.faults import FaultKind, SanitizerFault
from repro.targets.restapi import config as rest_config

_METHODS = ("GET", "HEAD", "POST", "PUT", "DELETE", "OPTIONS")
#: Headers the device firmware actually inspects; everything else is
#: counted once under ``header.other`` so site names stay bounded.
_KNOWN_HEADERS = frozenset(
    ("host", "content-length", "content-type", "authorization", "origin",
     "connection", "accept", "accept-encoding",
     "access-control-request-method")
)
_RESOURCES = ("status", "sensors", "actuators", "config", "firmware")
_HEX = "0123456789abcdefABCDEF"


class _BadRequest(Exception):
    """Malformed request; the server answers 400."""


class RestApiTarget(ProtocolTarget):
    """The REST device-API target."""

    NAME = "restapi"
    PROTOCOL = "HTTP"
    PORT = 8080

    @classmethod
    def config_sources(cls):
        return rest_config.config_sources()

    @classmethod
    def entity_overrides(cls):
        return dict(rest_config.ENTITY_OVERRIDES)

    @classmethod
    def default_config(cls) -> Dict[str, Any]:
        return dict(rest_config.DEFAULT_CONFIG)

    # -- startup ---------------------------------------------------------

    def _startup_impl(self) -> None:
        cov = self.cov
        cov.hit("startup.enter")
        if self.enabled("tls_enabled") and not str(self.cfg("tls_cert")):
            cov.hit("startup.conflict.tls_without_cert")
            raise StartupError("tls_enabled requires tls_cert",
                               ("tls_enabled", "tls_cert"))
        if self.enabled("auth_required") and not str(self.cfg("auth_token")):
            cov.hit("startup.conflict.auth_without_token")
            raise StartupError("auth_required requires auth_token",
                               ("auth_required", "auth_token"))
        if int(self.cfg("max_header_count")) <= 0:
            cov.hit("startup.conflict.no_headers")
            raise StartupError("max_header_count must be positive",
                               ("max_header_count",))
        if cov.branch("startup.auth", self.enabled("auth_required")):
            cov.hit("startup.auth.token_loaded")
        if cov.branch("startup.tls", self.enabled("tls_enabled")):
            cov.hit("startup.tls.cert_loaded")
            cov.hit("startup.tls.ciphers")
        if cov.branch("startup.cors", self.enabled("cors_enabled")):
            if str(self.cfg("cors_origin")) == "*":
                cov.hit("startup.cors.allow_all")
            else:
                cov.hit("startup.cors.origin_pinned")
        if cov.branch("startup.rate_limit", int(self.cfg("rate_limit")) > 0):
            cov.hit("startup.rate_limit.bucket_alloc")
        if cov.branch("startup.debug", self.enabled("debug_endpoints")):
            cov.hit("startup.debug.routes_mounted")
        if cov.branch("startup.compress", self.enabled("compress_responses")):
            cov.hit("startup.compress.gzip_tables")
        if cov.branch("startup.firmware", self.enabled("firmware_upload")):
            cov.hit("startup.firmware.partition_check")
        if cov.branch("startup.keepalive", self.enabled("keepalive")):
            cov.hit("startup.keepalive.pool_alloc")
            if int(self.cfg("keepalive_max")) <= 2:
                cov.hit("startup.keepalive.tiny_pool")
        if self.enabled("url_decode"):
            cov.hit("startup.url_decode_tables")
        if int(self.cfg("max_body_size")) == 0:
            cov.hit("startup.body_disabled")
        cov.hit("startup.complete")

    # -- session ---------------------------------------------------------

    def reset_session(self) -> None:
        self._requests_served = 0

    # -- parsing ---------------------------------------------------------

    def handle_packet(self, data: bytes) -> bytes:
        self.require_started()
        try:
            return self._dispatch(data)
        except _BadRequest:
            self.cov.hit("request.malformed")
            return self._response(400, b"bad request")

    def _dispatch(self, data: bytes) -> bytes:
        cov = self.cov
        text = data.decode("latin-1")
        head, _, body = text.partition("\r\n\r\n")
        lines = head.split("\r\n")
        if not lines or not lines[0]:
            cov.hit("request.empty")
            raise _BadRequest("empty request")
        method, path = self._parse_request_line(lines[0])
        headers = self._parse_headers(lines[1:])

        self._requests_served += 1
        limit = int(self.cfg("rate_limit"))
        if cov.branch("request.rate_limited",
                      limit > 0 and self._requests_served > limit):
            cov.hit("request.rate_limit_reject")
            # The token bucket refills; the next window is admitted.
            self._requests_served = 0
            return self._response(429, b"too many requests")

        if self.enabled("keepalive"):
            connection = headers.get("connection", [])
            if cov.branch("request.keepalive_dup_connection",
                          len(connection) > 1 and
                          "close" in [v.lower() for v in connection]):
                # Bug #1: a duplicate Connection header where one copy says
                # close tears the session down mid-request; the second
                # copy is then read from the freed connection object.
                raise SanitizerFault(
                    FaultKind.HEAP_USE_AFTER_FREE,
                    "keepalive_reuse",
                    "connection freed by close then re-read for keep-alive",
                )

        body_bytes = self._read_body(headers, body)

        if not self._authorized(headers):
            return self._response(401, b"unauthorized")
        if method == "OPTIONS":
            return self._preflight(headers)
        return self._route(method, path, headers, body_bytes)

    def _parse_request_line(self, line: str) -> Tuple[str, str]:
        cov = self.cov
        parts = line.split(" ")
        if len(parts) != 3:
            cov.hit("request.bad_line")
            raise _BadRequest("malformed request line")
        method, raw_path, version = parts
        if method in _METHODS:
            cov.hit("request.method.%s" % method)
        else:
            cov.hit("request.method.other")
            raise _BadRequest("unknown method")
        if cov.branch("request.bad_version",
                      version not in ("HTTP/1.0", "HTTP/1.1")):
            raise _BadRequest("unsupported version")
        if cov.branch("request.absolute_path", not raw_path.startswith("/")):
            raise _BadRequest("path must be absolute")
        path = self._decode_path(raw_path)
        return method, path

    def _decode_path(self, raw: str) -> str:
        cov = self.cov
        path, _, query = raw.partition("?")
        if query:
            cov.hit("request.query_string")
        if not self.enabled("url_decode"):
            return path
        cov.hit("request.percent_decode")
        out: List[str] = []
        index = 0
        while index < len(path):
            char = path[index]
            if cov.branch("decode.escape", char == "%"):
                if index + 2 > len(path) - 1:
                    # Bug #2: the two-byte hex read runs past the end of
                    # the path buffer on a truncated trailing escape.
                    raise SanitizerFault(
                        FaultKind.HEAP_BUFFER_OVERFLOW,
                        "url_decode",
                        "hex escape read past end of %d-byte path" % len(path),
                    )
                pair = path[index + 1:index + 3]
                if cov.branch("decode.bad_hex",
                              any(ch not in _HEX for ch in pair)):
                    raise _BadRequest("invalid percent escape")
                out.append(chr(int(pair, 16)))
                index += 3
                continue
            out.append(char)
            index += 1
        return "".join(out)

    def _parse_headers(self, lines: List[str]) -> Dict[str, List[str]]:
        cov = self.cov
        headers: Dict[str, List[str]] = {}
        count = 0
        for line in lines:
            if not line:
                continue
            count += 1
            if cov.branch("header.flood",
                          count > int(self.cfg("max_header_count"))):
                raise _BadRequest("too many headers")
            name, sep, value = line.partition(":")
            if not sep or not name.strip():
                cov.hit("header.no_colon")
                raise _BadRequest("malformed header")
            key = name.strip().lower()
            if key in _KNOWN_HEADERS:
                cov.hit("header.known.%s" % key)
            else:
                cov.hit("header.other")
            headers.setdefault(key, []).append(value.strip())
        return headers

    def _read_body(self, headers: Dict[str, List[str]], body: str) -> bytes:
        cov = self.cov
        declared = headers.get("content-length")
        raw = body.encode("latin-1")
        if declared is None:
            if cov.branch("body.undeclared", bool(raw)):
                if self.enabled("strict_content_length"):
                    raise _BadRequest("body without content-length")
                cov.hit("body.undeclared_accepted")
            return raw
        try:
            length = int(declared[0])
        except ValueError:
            cov.hit("body.bad_length")
            raise _BadRequest("unparseable content-length")
        if cov.branch("body.negative_length", length < 0):
            raise _BadRequest("negative content-length")
        if cov.branch("body.length_mismatch", length != len(raw)):
            if self.enabled("strict_content_length"):
                cov.hit("body.mismatch_rejected")
                raise _BadRequest("content-length mismatch")
            if length > (1 << 20):
                # Bug #3: with strict length checks off, the declared
                # length is trusted and sized into the receive buffer.
                raise SanitizerFault(
                    FaultKind.ALLOCATION_SIZE_TOO_BIG,
                    "http_read_body",
                    "allocating %d-byte body buffer" % length,
                )
            cov.hit("body.mismatch_trusted")
        if cov.branch("body.oversized",
                      len(raw) > int(self.cfg("max_body_size"))):
            raise _BadRequest("body exceeds max_body_size")
        return raw

    def _authorized(self, headers: Dict[str, List[str]]) -> bool:
        cov = self.cov
        if not cov.branch("auth.required", self.enabled("auth_required")):
            return True
        supplied = headers.get("authorization", [""])[0]
        expected = "Bearer %s" % self.cfg("auth_token")
        if cov.branch("auth.accepted", supplied == expected):
            return True
        if supplied:
            cov.hit("auth.bad_token")
        else:
            cov.hit("auth.missing")
        return False

    # -- routing ---------------------------------------------------------

    def _route(self, method: str, path: str,
               headers: Dict[str, List[str]], body: bytes) -> bytes:
        cov = self.cov
        if cov.branch("route.debug_tree", path.startswith("/debug")):
            return self._debug(path)
        prefix = str(self.cfg("api_prefix"))
        if cov.branch("route.outside_prefix",
                      not path.startswith(prefix + "/") and path != prefix):
            return self._response(404, b"not found")
        parts = [p for p in path[len(prefix):].split("/") if p]
        if not parts:
            cov.hit("route.prefix_root")
            return self._response(200, b'{"api":"device"}')
        resource = parts[0]
        if resource not in _RESOURCES:
            cov.hit("route.unknown_resource")
            return self._response(404, b"not found")
        cov.hit("route.resource.%s" % resource)
        if resource == "status":
            return self._response(200, b'{"uptime":4242,"rssi":-61}')
        if resource == "sensors":
            return self._sensors(method, parts[1:])
        if resource == "actuators":
            return self._actuators(method, parts[1:], body)
        if resource == "config":
            return self._config_resource(method, body)
        return self._firmware(method, body)

    def _sensors(self, method: str, rest: List[str]) -> bytes:
        cov = self.cov
        if cov.branch("sensors.collection", not rest):
            if method in ("GET", "HEAD"):
                return self._response(200, b'[{"id":1},{"id":2},{"id":3}]')
            cov.hit("sensors.collection_readonly")
            return self._response(405, b"method not allowed")
        if cov.branch("sensors.bad_id", not rest[0].isdigit()):
            return self._response(404, b"no such sensor")
        sensor = int(rest[0])
        if cov.branch("sensors.known_id", 1 <= sensor <= 3):
            if method == "DELETE":
                cov.hit("sensors.delete")
                return self._response(204, b"")
            return self._response(200, b'{"value":21.5,"unit":"C"}')
        return self._response(404, b"no such sensor")

    def _actuators(self, method: str, rest: List[str], body: bytes) -> bytes:
        cov = self.cov
        if cov.branch("actuators.write", method in ("POST", "PUT")):
            if cov.branch("actuators.empty_body", not body):
                return self._response(400, b"missing command body")
            if b"on" in body or b"off" in body:
                cov.hit("actuators.switched")
                return self._response(200, b'{"ok":true}')
            cov.hit("actuators.bad_command")
            return self._response(422, b"unknown command")
        if rest:
            cov.hit("actuators.item_read")
        return self._response(200, b'[{"id":"relay0","state":"off"}]')

    def _config_resource(self, method: str, body: bytes) -> bytes:
        cov = self.cov
        if cov.branch("config.update", method == "PUT"):
            if cov.branch("config.update_empty", not body):
                return self._response(400, b"empty config")
            cov.hit("config.persisted")
            return self._response(200, b'{"saved":true}')
        return self._response(200, b'{"mode":"station","dhcp":true}')

    def _firmware(self, method: str, body: bytes) -> bytes:
        cov = self.cov
        if not cov.branch("firmware.enabled", self.enabled("firmware_upload")):
            return self._response(403, b"firmware upload disabled")
        if cov.branch("firmware.upload", method == "PUT"):
            if len(body) > int(self.cfg("max_body_size")) // 2:
                # Bug #4: the staging partition is half the request body
                # limit; the flash write runs off the mapped region.
                raise SanitizerFault(
                    FaultKind.SEGV,
                    "firmware_flash",
                    "%d-byte image written past staging partition" % len(body),
                )
            if cov.branch("firmware.bad_magic", body[:2] != b"\xe9\x01"):
                return self._response(422, b"bad image magic")
            cov.hit("firmware.staged")
            return self._response(202, b'{"staged":true}')
        return self._response(200, b'{"version":"1.4.2"}')

    def _debug(self, path: str) -> bytes:
        cov = self.cov
        if not cov.branch("debug.enabled", self.enabled("debug_endpoints")):
            return self._response(403, b"debug disabled")
        if cov.branch("debug.heap", path == "/debug/heap"):
            return self._response(200, b'{"free":18724,"low_watermark":9001}')
        if cov.branch("debug.tasks", path == "/debug/tasks"):
            return self._response(200, b'[{"task":"httpd","stack":512}]')
        cov.hit("debug.unknown")
        return self._response(404, b"no such probe")

    def _preflight(self, headers: Dict[str, List[str]]) -> bytes:
        cov = self.cov
        if not cov.branch("cors.enabled", self.enabled("cors_enabled")):
            return self._response(405, b"preflight rejected")
        origin = headers.get("origin", [""])[0]
        if cov.branch("cors.no_origin", not origin):
            return self._response(400, b"preflight without origin")
        allowed = str(self.cfg("cors_origin"))
        if cov.branch("cors.origin_match", allowed == "*" or origin == allowed):
            if "access-control-request-method" in headers:
                cov.hit("cors.method_probe")
            return self._response(204, b"")
        cov.hit("cors.origin_rejected")
        return self._response(403, b"origin not allowed")

    # -- responses -------------------------------------------------------

    _REASONS = {200: "OK", 202: "Accepted", 204: "No Content",
                400: "Bad Request", 401: "Unauthorized", 403: "Forbidden",
                404: "Not Found", 405: "Method Not Allowed",
                422: "Unprocessable Entity", 429: "Too Many Requests"}

    def _response(self, status: int, body: bytes) -> bytes:
        cov = self.cov
        cov.hit("response.%d" % status)
        if self.enabled("compress_responses") and len(body) > 32:
            cov.hit("response.compressed")
        head = "HTTP/1.1 %d %s\r\nContent-Length: %d\r\n\r\n" % (
            status, self._REASONS.get(status, "?"), len(body))
        return head.encode("latin-1") + body
