"""Pit for the REST device-API target: HTTP/1.1 request formats."""

from repro.fuzzing.datamodel import Blob, DataModel
from repro.fuzzing.statemodel import Action, State, StateModel


def _request(name: str, line: str, headers: str = "", body: str = "") -> DataModel:
    return DataModel(
        name,
        [
            Blob("line", default=(line + "\r\n").encode("latin-1")),
            Blob("host", default=b"Host: device.local\r\n"),
            Blob("headers", default=headers.encode("latin-1")),
            Blob("sep", default=b"\r\n"),
            Blob("body", default=body.encode("latin-1")),
        ],
    )


def state_model() -> StateModel:
    """The REST API request state model shared by all fuzzers."""
    post_body = '{"relay0":"on"}'
    config_body = '{"mode":"ap","dhcp":false}'
    firmware_body = "\xe9\x01firmware-blob"
    data_models = [
        _request("GetStatus", "GET /api/status HTTP/1.1"),
        _request("GetSensors", "GET /api/sensors HTTP/1.1"),
        _request("GetSensorItem", "GET /api/sensors/2 HTTP/1.1"),
        _request("DeleteSensor", "DELETE /api/sensors/3 HTTP/1.1"),
        _request("PostActuator", "POST /api/actuators HTTP/1.1",
                 headers="Content-Type: application/json\r\n"
                         "Content-Length: %d\r\n" % len(post_body),
                 body=post_body),
        _request("PutConfig", "PUT /api/config HTTP/1.1",
                 headers="Content-Length: %d\r\n" % len(config_body),
                 body=config_body),
        _request("PutFirmware", "PUT /api/firmware HTTP/1.1",
                 headers="Content-Length: %d\r\n" % len(firmware_body),
                 body=firmware_body),
        _request("OptionsPreflight", "OPTIONS /api/actuators HTTP/1.1",
                 headers="Origin: https://cloud.example\r\n"
                         "Access-Control-Request-Method: POST\r\n"),
        _request("GetDebugHeap", "GET /debug/heap HTTP/1.1"),
        _request("GetEscaped", "GET /api/sensors%2F1 HTTP/1.1"),
        # A bare truncated request line: exercises the malformed path.
        DataModel("Runt", [Blob("fragment", default=b"GET /api")]),
    ]
    states = [
        State("start")
        .add_transition("browse", 3.0)
        .add_transition("control", 2.0)
        .add_transition("admin", 1.0)
        .add_transition("crossorigin", 1.0)
        .add_transition("noise", 0.5),
        State("browse", [Action("send", "GetStatus"),
                         Action("send", "GetSensors"),
                         Action("send", "GetSensorItem")])
        .add_transition("control", 1.0)
        .add_transition("finish", 2.0),
        State("control", [Action("send", "PostActuator"),
                          Action("send", "PutConfig"),
                          Action("send", "DeleteSensor")])
        .add_transition("admin", 1.0)
        .add_transition("finish", 2.0),
        State("admin", [Action("send", "PutFirmware"),
                        Action("send", "GetDebugHeap")])
        .add_transition("finish", 1.0),
        State("crossorigin", [Action("send", "OptionsPreflight"),
                              Action("send", "GetEscaped")])
        .add_transition("finish", 1.0),
        State("noise", [Action("send", "Runt")])
        .add_transition("finish", 1.0),
        State("finish"),
    ]
    return StateModel("restapi-session", "start", states, data_models)
