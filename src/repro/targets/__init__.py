"""Protocol targets: the six systems-under-test plus the fault model.

Each subpackage implements one protocol server with a realistic
configuration surface (configuration files and/or CLI options), explicit
branch-coverage instrumentation, and the configuration-gated bugs from
Table II of the paper.
"""

from repro.targets.base import ProtocolTarget, TargetFactory, startup_probe_for
from repro.targets.faults import BugLedger, CrashReport, FaultKind, SanitizerFault

__all__ = [
    "BugLedger",
    "CrashReport",
    "FaultKind",
    "ProtocolTarget",
    "SanitizerFault",
    "TargetFactory",
    "startup_probe_for",
]


def target_registry():
    """Name -> target class for all six protocol implementations.

    Imported lazily to keep ``repro.targets`` import-light.
    """
    from repro.targets.amqp.server import QpidTarget
    from repro.targets.coap.server import LibcoapTarget
    from repro.targets.dds.server import CycloneDdsTarget
    from repro.targets.dns.server import DnsmasqTarget
    from repro.targets.dtls.server import OpenSslDtlsTarget
    from repro.targets.mqtt.server import MosquittoTarget

    return {
        "mosquitto": MosquittoTarget,
        "libcoap": LibcoapTarget,
        "cyclonedds": CycloneDdsTarget,
        "openssl": OpenSslDtlsTarget,
        "qpid": QpidTarget,
        "dnsmasq": DnsmasqTarget,
    }
