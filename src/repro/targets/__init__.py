"""Protocol targets: the pluggable systems-under-test plus the fault model.

Each target lives in its own directory: a subpackage with a
``target.json`` manifest (protocol, description, config-surface summary,
data/state model reference, injected-bug table) alongside its server and
config modules. Importing the subpackage registers the target; the
catalogue itself — including the configuration-gated bugs from Table II
of the paper for the seed subjects — lives in
:mod:`repro.targets.registry` and discovers directories lazily, so
adding a target needs zero edits outside its own directory. Out-of-tree
targets plug in via the ``CMFUZZ_TARGET_MODULES`` environment variable
or the ``repro.targets`` entry-point group.
"""

import warnings

from repro.targets.base import ProtocolTarget, TargetFactory, startup_probe_for
from repro.targets.faults import BugLedger, CrashReport, FaultKind, SanitizerFault
from repro.targets.registry import (
    DISCOVERY_ENV,
    ENTRY_POINT_GROUP,
    InjectedBug,
    ManifestError,
    TargetEntry,
    TargetManifest,
    TARGETS_VIEW,
    create_target,
    get_target,
    load_manifest,
    register_target,
    render_target_table,
    target_entries,
    target_names,
    unregister_target,
    validate_manifest,
)

__all__ = [
    "BugLedger",
    "CrashReport",
    "DISCOVERY_ENV",
    "ENTRY_POINT_GROUP",
    "FaultKind",
    "InjectedBug",
    "ManifestError",
    "ProtocolTarget",
    "SanitizerFault",
    "TARGETS_VIEW",
    "TargetEntry",
    "TargetFactory",
    "TargetManifest",
    "create_target",
    "get_target",
    "load_manifest",
    "register_target",
    "render_target_table",
    "startup_probe_for",
    "target_entries",
    "target_names",
    "target_registry",
    "unregister_target",
    "validate_manifest",
]


def target_registry():
    """Deprecated: use :func:`target_entries` / :func:`target_names`.

    Returns the live read-only ``name -> target class`` mapping view over
    the plugin registry, so existing call sites keep working.
    """
    warnings.warn(
        "target_registry() is deprecated; use repro.targets.target_entries() "
        "(or target_names()/create_target()) instead",
        DeprecationWarning,
        stacklevel=2,
    )
    return TARGETS_VIEW
