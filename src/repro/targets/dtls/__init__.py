"""OpenSSL-style DTLS server target."""

from repro.targets.dtls.server import OpenSslDtlsTarget

__all__ = ["OpenSslDtlsTarget"]
