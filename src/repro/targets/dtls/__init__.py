"""OpenSSL-style DTLS server target."""

from repro.pits.dtls import state_model
from repro.targets.dtls.server import OpenSslDtlsTarget
from repro.targets.registry import load_manifest, register_target

MANIFEST = load_manifest(__file__)
register_target(MANIFEST.name, OpenSslDtlsTarget, state_model, MANIFEST)

__all__ = ["MANIFEST", "OpenSslDtlsTarget"]
