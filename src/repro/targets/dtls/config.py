"""The OpenSSL-style DTLS server configuration surface: CLI options.

DTLS relies on fixed cryptographic settings (the paper's explanation for
modest CMFuzz gains on OpenSSL): most options select among a small number
of rigid cipher/protocol combinations.
"""

from repro.core.entity import Flag, ValueType
from repro.core.extraction import ConfigSources

CLI_HELP = """\
Usage: dtls-server [OPTIONS]
  --port=4433             UDP listen port (default: 4433)
  --dtls1_2               force DTLS 1.2 (default: negotiate)
  --cipher SUITE          one of: AES128-GCM-SHA256, AES256-GCM-SHA384, PSK-AES128-CBC-SHA, CHACHA20-POLY1305
  --psk KEY               pre-shared key in hex
  --cert=/etc/dtls/server.crt  server certificate file
  --key=/etc/dtls/server.key   server private key file
  --verify=0              peer verification depth (default: 0)
  --mtu=1400              path MTU for handshake fragmentation (default: 1400)
  --cookie-exchange       enable stateless cookie exchange (HelloVerifyRequest)
  --no-renegotiation      forbid renegotiation
  --session-cache         enable session resumption cache
  --timeout=30            handshake retransmit timeout seconds (default: 30)
"""

ENTITY_OVERRIDES = {
    "psk": {"values": ("", "deadbeef"), "flag": Flag.MUTABLE,
            "type": ValueType.STRING},
    "cipher": {
        "values": ("AES128-GCM-SHA256", "AES256-GCM-SHA384",
                   "PSK-AES128-CBC-SHA", "CHACHA20-POLY1305"),
        "flag": Flag.MUTABLE,
    },
}


def config_sources() -> ConfigSources:
    return ConfigSources(cli_options=(CLI_HELP,))


DEFAULT_CONFIG = {
    "port": 4433,
    "dtls1_2": False,
    "cipher": "AES128-GCM-SHA256",
    "psk": "",
    "cert": "/etc/dtls/server.crt",
    "key": "/etc/dtls/server.key",
    "verify": 0,
    "mtu": 1400,
    "cookie-exchange": False,
    "no-renegotiation": False,
    "session-cache": False,
    "timeout": 30,
}
