"""An OpenSSL-style DTLS 1.2 server.

Parses DTLS records (content type, version, epoch, sequence, length) and
the handshake state machine: ClientHello (with cookie exchange when
enabled), key exchange, ChangeCipherSpec, Finished, application data and
alerts. Configuration gates are narrow — fixed cryptographic settings —
so coverage gains from configuration diversity are modest, matching the
paper's observation for OpenSSL.
"""

from __future__ import annotations

from typing import Any, Dict

from repro.errors import StartupError
from repro.targets.base import ProtocolTarget
from repro.targets.dtls import config as dtls_config

# Record content types.
CT_CHANGE_CIPHER_SPEC = 20
CT_ALERT = 21
CT_HANDSHAKE = 22
CT_APPLICATION_DATA = 23

# Handshake message types.
HS_CLIENT_HELLO = 1
HS_HELLO_VERIFY_REQUEST = 3
HS_CERTIFICATE = 11
HS_CLIENT_KEY_EXCHANGE = 16
HS_FINISHED = 20

_DTLS_VERSIONS = {0xFEFF: "1.0", 0xFEFD: "1.2"}
_PSK_CIPHERS = ("PSK-AES128-CBC-SHA",)


class _ParseError(Exception):
    """Malformed record; the server sends an alert / drops it."""


class OpenSslDtlsTarget(ProtocolTarget):
    """The DTLS server target."""

    NAME = "openssl"
    PROTOCOL = "DTLS"
    PORT = 4433

    @classmethod
    def config_sources(cls):
        return dtls_config.config_sources()

    @classmethod
    def entity_overrides(cls):
        return dict(dtls_config.ENTITY_OVERRIDES)

    @classmethod
    def default_config(cls) -> Dict[str, Any]:
        return dict(dtls_config.DEFAULT_CONFIG)

    # -- startup ---------------------------------------------------------

    def _startup_impl(self) -> None:
        cov = self.cov
        cov.hit("startup.enter")
        cipher = str(self.cfg("cipher"))
        psk = str(self.cfg("psk"))
        if cipher in _PSK_CIPHERS and not psk:
            cov.hit("startup.conflict.psk_cipher_no_key")
            raise StartupError("PSK cipher requires --psk", ("cipher", "psk"))
        if psk and int(self.cfg("verify")) > 0:
            cov.hit("startup.conflict.psk_with_verify")
            raise StartupError(
                "PSK and certificate verification are exclusive", ("psk", "verify")
            )
        if int(self.cfg("mtu")) < 256:
            cov.hit("startup.bad_mtu")
            raise StartupError("MTU below minimum", ("mtu",))
        cov.hit("startup.cipher.%s" % ("psk" if cipher in _PSK_CIPHERS else
                                       "chacha" if "CHACHA" in cipher else "aes"))
        if cov.branch("startup.force_12", self.enabled("dtls1_2")):
            cov.hit("startup.version_pinned")
        if cov.branch("startup.psk", bool(psk)):
            cov.hit("startup.psk_identity_hint")
        else:
            cov.hit("startup.cert_chain_load")
            if cov.branch("startup.verify_peer", int(self.cfg("verify")) > 0):
                cov.hit("startup.ca_store")
                if int(self.cfg("verify")) > 4:
                    cov.hit("startup.deep_verify")
        if cov.branch("startup.cookie", self.enabled("cookie-exchange")):
            cov.hit("startup.cookie_secret")
        if cov.branch("startup.session_cache", self.enabled("session-cache")):
            cov.hit("startup.cache_init")
            if self.enabled("no-renegotiation"):
                cov.hit("startup.cache_without_renego")
        if self.enabled("no-renegotiation"):
            cov.hit("startup.renego_disabled")
        if int(self.cfg("timeout")) < 5:
            cov.hit("startup.aggressive_retransmit")
        # Server-lifetime session cache (survives connection resets).
        self._session_cache: set = set()
        cov.hit("startup.complete")

    # -- session ---------------------------------------------------------

    def reset_session(self) -> None:
        self._state = "idle"  # idle -> hello -> keyed -> established
        self._cookie_sent = False
        self._epoch = 0
        self._last_seq = -1
        self._handshakes = 0
        self._pending_sid = b""

    # -- parsing -----------------------------------------------------------

    def handle_packet(self, data: bytes) -> bytes:
        self.require_started()
        try:
            return self._dispatch(data)
        except _ParseError:
            self.cov.hit("packet.malformed")
            return self._alert(50)  # decode_error

    def _dispatch(self, data: bytes) -> bytes:
        cov = self.cov
        if len(data) < 13:
            cov.hit("record.runt")
            raise _ParseError("short record header")
        content_type = data[0]
        version = int.from_bytes(data[1:3], "big")
        epoch = int.from_bytes(data[3:5], "big")
        seq = int.from_bytes(data[5:11], "big")
        length = int.from_bytes(data[11:13], "big")
        if version not in _DTLS_VERSIONS:
            cov.hit("record.bad_version")
            raise _ParseError("unknown version")
        if self.enabled("dtls1_2") and version != 0xFEFD:
            cov.hit("record.version_rejected")
            return self._alert(70)  # protocol_version
        cov.hit("record.version.%s" % _DTLS_VERSIONS[version])
        if cov.branch("record.length_mismatch", length != len(data) - 13):
            if length > len(data) - 13:
                raise _ParseError("record truncated")
        body = data[13 : 13 + length]
        if cov.branch("record.bad_epoch", epoch != self._epoch):
            return b""
        if cov.branch("record.replay", seq <= self._last_seq):
            cov.hit("record.replay_dropped")
            return b""
        self._last_seq = seq
        if content_type == CT_HANDSHAKE:
            return self._handle_handshake(body)
        if content_type == CT_CHANGE_CIPHER_SPEC:
            cov.hit("record.ccs")
            if cov.branch("record.ccs_early", self._state != "keyed"):
                return self._alert(10)  # unexpected_message
            self._epoch += 1
            self._last_seq = -1
            self._state = "ccs"
            return b""
        if content_type == CT_ALERT:
            cov.hit("record.alert")
            if len(body) >= 2 and body[0] == 2:
                cov.hit("record.fatal_alert")
                self.reset_session()
            return b""
        if content_type == CT_APPLICATION_DATA:
            if cov.branch("record.appdata_early", self._state != "established"):
                return self._alert(10)
            cov.hit("record.appdata")
            if not body:
                cov.hit("record.appdata_empty")
            return b""
        cov.hit("record.unknown_type")
        raise _ParseError("unknown content type")

    def _handle_handshake(self, body: bytes) -> bytes:
        cov = self.cov
        if len(body) < 12:
            cov.hit("hs.short_header")
            raise _ParseError("short handshake header")
        msg_type = body[0]
        msg_len = int.from_bytes(body[1:4], "big")
        msg_seq = int.from_bytes(body[4:6], "big")
        frag_offset = int.from_bytes(body[6:9], "big")
        frag_len = int.from_bytes(body[9:12], "big")
        if cov.branch("hs.fragmented",
                      frag_offset != 0 or frag_len != msg_len):
            mtu = int(self.cfg("mtu"))
            if frag_len > mtu:
                cov.hit("hs.frag_over_mtu")
                raise _ParseError("fragment exceeds MTU")
            cov.hit("hs.frag_buffered")
            return b""
        payload = body[12 : 12 + frag_len]
        if msg_type == HS_CLIENT_HELLO:
            return self._handle_client_hello(payload, msg_seq)
        if msg_type == HS_CERTIFICATE:
            cov.hit("hs.certificate")
            if cov.branch("hs.cert_unsolicited", int(self.cfg("verify")) == 0):
                return self._alert(10)
            if not payload:
                cov.hit("hs.cert_empty")
                return self._alert(42)  # bad_certificate
            return b""
        if msg_type == HS_CLIENT_KEY_EXCHANGE:
            cov.hit("hs.cke")
            if cov.branch("hs.cke_early", self._state != "hello"):
                return self._alert(10)
            if cov.branch("hs.cke_psk", bool(self.cfg("psk"))):
                if len(payload) < 2:
                    cov.hit("hs.cke_psk_short")
                    raise _ParseError("missing PSK identity")
                cov.hit("hs.cke_psk_identity")
            self._state = "keyed"
            return b""
        if msg_type == HS_FINISHED:
            cov.hit("hs.finished")
            if cov.branch("hs.finished_early", self._state not in ("ccs", "keyed")):
                return self._alert(10)
            if cov.branch("hs.finished_before_ccs", self._state == "keyed"):
                return self._alert(10)
            self._state = "established"
            self._handshakes += 1
            if self._handshakes > 1:
                if cov.branch("hs.renego_forbidden", self.enabled("no-renegotiation")):
                    return self._alert(100)  # no_renegotiation
                cov.hit("hs.renegotiated")
            if self.enabled("session-cache"):
                cov.hit("hs.session_cached")
                if self._pending_sid:
                    self._session_cache.add(bytes(self._pending_sid))
            return b""
        cov.hit("hs.unknown_type")
        raise _ParseError("unknown handshake type")

    def _handle_client_hello(self, payload: bytes, msg_seq: int) -> bytes:
        cov = self.cov
        cov.hit("hello.enter")
        if len(payload) < 34:
            cov.hit("hello.short")
            raise _ParseError("ClientHello too short")
        position = 34  # legacy version + random
        if position >= len(payload):
            raise _ParseError("no session id")
        sid_len = payload[position]
        sid = payload[position + 1 : position + 1 + sid_len]
        position += 1 + sid_len
        self._pending_sid = b""
        if cov.branch("hello.resumption", sid_len > 0):
            if self.enabled("session-cache"):
                cov.hit("hello.cache_lookup")
                if cov.branch("hello.cache_hit", sid in self._session_cache):
                    # Abbreviated handshake: skip the key exchange.
                    cov.hit("hello.resumed")
                    self._state = "keyed"
                    return self._server_hello()
                self._pending_sid = sid
            else:
                cov.hit("hello.cache_miss_no_cache")
        if position >= len(payload):
            cov.hit("hello.truncated_cookie")
            raise _ParseError("no cookie")
        cookie_len = payload[position]
        position += 1
        cookie = payload[position : position + cookie_len]
        if len(cookie) < cookie_len:
            raise _ParseError("cookie truncated")
        position += cookie_len
        if cov.branch("hello.cookie_exchange", self.enabled("cookie-exchange")):
            if not cookie:
                cov.hit("hello.verify_request")
                self._cookie_sent = True
                return self._hvr()
            if cov.branch("hello.cookie_unexpected", not self._cookie_sent):
                return self._alert(47)  # illegal_parameter
            cov.hit("hello.cookie_ok")
        ciphers = payload[position:]
        if cov.branch("hello.no_ciphers", len(ciphers) < 2):
            return self._alert(40)  # handshake_failure
        offered = {int.from_bytes(ciphers[i : i + 2], "big")
                   for i in range(0, len(ciphers) - 1, 2)}
        cipher = str(self.cfg("cipher"))
        wanted = 0x00AE if cipher in _PSK_CIPHERS else (
            0xCCA8 if "CHACHA" in cipher else 0x009C)
        if cov.branch("hello.cipher_match", wanted in offered):
            cov.hit("hello.negotiated")
            self._state = "hello"
            return self._server_hello()
        cov.hit("hello.no_common_cipher")
        return self._alert(40)

    # -- replies -----------------------------------------------------------

    def _record(self, content_type: int, body: bytes) -> bytes:
        header = bytes([content_type]) + b"\xfe\xfd" + b"\x00\x00" + bytes(6)
        return header + len(body).to_bytes(2, "big") + body

    def _alert(self, code: int) -> bytes:
        self.cov.hit("alert.sent.%d" % code)
        return self._record(CT_ALERT, bytes([2, code]))

    def _hvr(self) -> bytes:
        body = bytes([HS_HELLO_VERIFY_REQUEST]) + b"\x00\x00\x23" + bytes(8) + b"\xfe\xfd" + b"\x20" + b"C" * 32
        return self._record(CT_HANDSHAKE, body)

    def _server_hello(self) -> bytes:
        body = bytes([2]) + b"\x00\x00\x26" + bytes(8) + b"\xfe\xfd" + bytes(32) + b"\x00\x00"
        return self._record(CT_HANDSHAKE, body)
