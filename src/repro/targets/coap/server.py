"""A libcoap-style CoAP server with block-wise transfer support.

Parses RFC 7252 messages (header, token, the delta-encoded option list,
payload marker), serves GET/PUT/POST/DELETE on a small resource tree, and
implements RFC 7959 block-wise transfers plus RFC 9177 Q-Block when the
corresponding non-default configuration is enabled. Carries the three
CoAP bugs of Table II, including the paper's case-study SEGV in
``coap_handle_request_put_block`` (Figure 5).
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from repro.errors import StartupError
from repro.targets.base import ProtocolTarget
from repro.targets.coap import config as coap_config
from repro.targets.faults import FaultKind, SanitizerFault

# CoAP message types.
CON, NON, ACK, RST = 0, 1, 2, 3

# Method / response codes.
EMPTY = 0x00
GET, POST, PUT, DELETE = 0x01, 0x02, 0x03, 0x04

# Option numbers (RFC 7252 / 7959 / 7641 / 9177).
OPT_OBSERVE = 6
OPT_URI_PATH = 11
OPT_CONTENT_FORMAT = 12
OPT_URI_QUERY = 15
OPT_QBLOCK1 = 19
OPT_BLOCK2 = 23
OPT_BLOCK1 = 27
OPT_SIZE1 = 60

_VALID_BLOCK_SIZES = (16, 32, 64, 128, 256, 512, 1024)


class _ParseError(Exception):
    """Malformed message; the server answers RST / ignores."""


class LibcoapTarget(ProtocolTarget):
    """The CoAP server target."""

    NAME = "libcoap"
    PROTOCOL = "CoAP"
    PORT = 5683

    @classmethod
    def config_sources(cls):
        return coap_config.config_sources()

    @classmethod
    def entity_overrides(cls):
        return dict(coap_config.ENTITY_OVERRIDES)

    @classmethod
    def default_config(cls) -> Dict[str, Any]:
        return dict(coap_config.DEFAULT_CONFIG)

    # -- startup ---------------------------------------------------------

    def _startup_impl(self) -> None:
        cov = self.cov
        cov.hit("startup.enter")
        if self.enabled("qblock") and not self.enabled("block-transfer"):
            cov.hit("startup.conflict.qblock_without_block")
            raise StartupError(
                "qblock requires block-transfer", ("qblock", "block-transfer")
            )
        if int(self.cfg("block-size")) not in _VALID_BLOCK_SIZES:
            cov.hit("startup.bad_block_size")
            raise StartupError("invalid block-size", ("block-size",))
        if int(self.cfg("nstart")) < 1:
            cov.hit("startup.bad_nstart")
            raise StartupError("nstart must be >= 1", ("nstart",))
        cov.hit("startup.udp_listener")
        if cov.branch("startup.block", self.enabled("block-transfer")):
            cov.hit("startup.block.szx_table")
            size = int(self.cfg("block-size"))
            if size <= 64:
                cov.hit("startup.block.small")
            else:
                cov.hit("startup.block.large")
            if cov.branch("startup.qblock", self.enabled("qblock")):
                cov.hit("startup.qblock.recovery_timers")
                if self.enabled("multicast"):
                    cov.hit("startup.qblock.multicast_pacing")
        if cov.branch("startup.observe", self.enabled("observe")):
            cov.hit("startup.observe.subject_registry")
            if int(self.cfg("session-timeout")) < 60:
                cov.hit("startup.observe.short_lease")
        if cov.branch("startup.multicast", self.enabled("multicast")):
            cov.hit("startup.multicast.group_join")
            if self.enabled("dtls"):
                cov.hit("startup.multicast.dtls_warning")
        if cov.branch("startup.dtls", self.enabled("dtls")):
            cov.hit("startup.dtls.ctx")
            if cov.branch("startup.dtls.psk", bool(self.cfg("psk"))):
                cov.hit("startup.dtls.psk_ciphers")
            else:
                cov.hit("startup.dtls.cert_load")
        if int(self.cfg("max-sessions")) == 0:
            cov.hit("startup.sessions_unbounded")
        if self.enabled("verbose"):
            cov.hit("startup.verbose")
        cov.hit("startup.complete")

    # -- session ---------------------------------------------------------

    def reset_session(self) -> None:
        self._resources: Dict[str, bytes] = {"sensors/temp": b"21.5", ".well-known/core": b"</sensors/temp>"}
        self._observers: Dict[str, int] = {}
        # Block-wise reassembly state: path -> (received block numbers,
        # body buffer or None). body None mirrors lg_srcv->body_data NULL.
        self._put_blocks: Dict[str, Tuple[set, Optional[bytearray]]] = {}

    # -- parsing -----------------------------------------------------------

    def handle_packet(self, data: bytes) -> bytes:
        self.require_started()
        cov = self.cov
        try:
            return self._dispatch(data)
        except _ParseError:
            cov.hit("packet.malformed")
            return b""

    def _dispatch(self, data: bytes) -> bytes:
        cov = self.cov
        if len(data) < 4:
            cov.hit("packet.runt")
            raise _ParseError("short header")
        version = data[0] >> 6
        mtype = (data[0] >> 4) & 0x03
        token_length = data[0] & 0x0F
        code = data[1]
        mid = int.from_bytes(data[2:4], "big")
        if cov.branch("packet.bad_version", version != 1):
            return b""
        cov.hit("packet.type.%d" % mtype)
        if cov.branch("packet.long_token", token_length > 8):
            raise _ParseError("TKL > 8")
        if len(data) < 4 + token_length:
            cov.hit("packet.token_truncated")
            raise _ParseError("token truncated")
        token = data[4 : 4 + token_length]
        if cov.branch("packet.empty", code == EMPTY):
            if mtype == CON:
                cov.hit("packet.ping")
                return self._reply(RST, 0, mid, token)
            return b""
        options, payload = self._parse_options(data, 4 + token_length)
        if code in (GET, POST, PUT, DELETE):
            return self._handle_request(mtype, code, mid, token, options, payload)
        cov.hit("packet.response_code_inbound")
        return self._reply(RST, 0, mid, token)

    def _parse_options(self, data: bytes, offset: int) -> Tuple[List[Tuple[int, bytes]], bytes]:
        """The delta-encoded option list (getOptionDelta territory)."""
        cov = self.cov
        options: List[Tuple[int, bytes]] = []
        number = 0
        position = offset
        while position < len(data):
            byte = data[position]
            if cov.branch("options.payload_marker", byte == 0xFF):
                payload = data[position + 1 :]
                if not payload:
                    cov.hit("options.marker_no_payload")
                    raise _ParseError("payload marker without payload")
                return options, payload
            position += 1
            delta = byte >> 4
            length = byte & 0x0F
            if delta == 13:
                cov.hit("options.delta_ext8")
                if position >= len(data):
                    raise _ParseError("truncated extended delta")
                delta = data[position] + 13
                position += 1
            elif delta == 14:
                cov.hit("options.delta_ext16")
                if position + 2 > len(data):
                    # Bug #7 (Table II): stack-buffer-overflow in
                    # CoapPDU::getOptionDelta — the 16-bit extended delta
                    # is read past the end of the datagram buffer.
                    raise SanitizerFault(
                        FaultKind.STACK_BUFFER_OVERFLOW,
                        "CoapPDU::getOptionDelta",
                        "16-bit extended delta past end of packet",
                    )
                delta = int.from_bytes(data[position : position + 2], "big") + 269
                position += 2
            elif delta == 15:
                cov.hit("options.delta_reserved")
                if len(options) > 12:
                    # Bug #6 (Table II): SEGV in coap_clean_options — the
                    # error path frees a long option chain, then walks it.
                    raise SanitizerFault(
                        FaultKind.SEGV,
                        "coap_clean_options",
                        "option chain freed then walked on reserved delta",
                    )
                raise _ParseError("reserved option delta")
            if length == 13:
                cov.hit("options.len_ext8")
                if position >= len(data):
                    raise _ParseError("truncated extended length")
                length = data[position] + 13
                position += 1
            elif length == 14:
                cov.hit("options.len_ext16")
                if position + 2 > len(data):
                    raise _ParseError("truncated extended length16")
                length = int.from_bytes(data[position : position + 2], "big") + 269
                position += 2
            elif length == 15:
                cov.hit("options.len_reserved")
                raise _ParseError("reserved option length")
            if position + length > len(data):
                cov.hit("options.value_truncated")
                raise _ParseError("option value truncated")
            number += delta
            options.append((number, data[position : position + length]))
            position += length
            cov.hit("options.number.%d" % number if number in _KNOWN_OPTIONS
                    else "options.number.other")
        return options, b""

    # -- request handling ------------------------------------------------

    def _handle_request(self, mtype: int, code: int, mid: int, token: bytes,
                        options: List[Tuple[int, bytes]], payload: bytes) -> bytes:
        cov = self.cov
        path_segments = [o[1].decode("utf-8", "replace") for o in options if o[0] == OPT_URI_PATH]
        path = "/".join(path_segments)
        if cov.branch("request.deep_path", len(path_segments) > 4):
            cov.hit("request.deep_path_walk")
        if any(not segment for segment in path_segments):
            cov.hit("request.empty_segment")
        queries = [o for o in options if o[0] == OPT_URI_QUERY]
        if queries:
            cov.hit("request.has_query")
            if any(b"=" in q[1] for q in queries):
                cov.hit("request.query_pair")
            if len(queries) > 4:
                cov.hit("request.query_flood")
        content_format = [o for o in options if o[0] == OPT_CONTENT_FORMAT]
        if cov.branch("request.content_format", bool(content_format)):
            value = content_format[0][1]
            fmt = int.from_bytes(value, "big") if len(value) <= 2 else -1
            if fmt == 0:
                cov.hit("request.cf.text")
            elif fmt in (40, 41, 42):
                cov.hit("request.cf.link_or_binary")
            elif fmt in (50, 60):
                cov.hit("request.cf.json_cbor")
            else:
                cov.hit("request.cf.unknown")
        size1 = [o for o in options if o[0] == OPT_SIZE1]
        if size1:
            cov.hit("request.size1_hint")
        if cov.branch("request.observe_opt",
                      any(o[0] == OPT_OBSERVE for o in options)):
            if self.enabled("observe"):
                return self._handle_observe(code, mid, token, path, options)
            cov.hit("request.observe_disabled")
        if code == GET:
            return self._handle_get(mtype, mid, token, path, options)
        if code == PUT:
            return self._handle_put(mtype, mid, token, path, options, payload)
        if code == POST:
            return self._handle_post(mid, token, path, payload)
        cov.hit("request.delete")
        if cov.branch("request.delete_known", path in self._resources):
            del self._resources[path]
            return self._reply(ACK, 0x42, mid, token)  # 2.02 Deleted
        return self._reply(ACK, 0x84, mid, token)  # 4.04

    def _handle_get(self, mtype: int, mid: int, token: bytes, path: str,
                    options: List[Tuple[int, bytes]]) -> bytes:
        cov = self.cov
        cov.hit("get.enter")
        body = self._resources.get(path)
        if cov.branch("get.not_found", body is None):
            return self._reply(ACK, 0x84, mid, token)
        block2 = [o for o in options if o[0] == OPT_BLOCK2]
        if cov.branch("get.block2", bool(block2)):
            if not self.enabled("block-transfer"):
                cov.hit("get.block2_disabled")
                return self._reply(ACK, 0x80, mid, token)  # 4.00
            num, more, szx = self._decode_block(block2[0][1])
            cov.hit("get.block2.szx.%d" % szx)
            size = 16 << szx
            if size not in _VALID_BLOCK_SIZES:
                cov.hit("get.block2.bad_szx")
                return self._reply(ACK, 0x80, mid, token)
            start = num * size
            if cov.branch("get.block2.out_of_range", start >= len(body)):
                return self._reply(ACK, 0x80, mid, token)
            chunk = body[start : start + size]
            cov.hit("get.block2.served")
            return self._reply(ACK, 0x45, mid, token, chunk)
        if mtype == NON:
            cov.hit("get.non_confirmable")
        return self._reply(ACK if mtype == CON else NON, 0x45, mid, token, body)

    def _handle_put(self, mtype: int, mid: int, token: bytes, path: str,
                    options: List[Tuple[int, bytes]], payload: bytes) -> bytes:
        cov = self.cov
        cov.hit("put.enter")
        if cov.branch("put.no_path", not path):
            return self._reply(ACK, 0x80, mid, token)
        if len(payload) > int(self.cfg("max-resource-size")):
            cov.hit("put.too_large")
            return self._reply(ACK, 0x8D, mid, token)  # 4.13
        block1 = [o for o in options if o[0] == OPT_BLOCK1]
        qblock1 = [o for o in options if o[0] == OPT_QBLOCK1]
        if cov.branch("put.qblock1", bool(qblock1)):
            if self.enabled("qblock"):
                return self._handle_put_qblock(mid, token, path, qblock1[0][1], payload)
            cov.hit("put.qblock_disabled")
            return self._reply(ACK, 0x82, mid, token)  # 4.02 bad option
        if cov.branch("put.block1", bool(block1)):
            if not self.enabled("block-transfer"):
                cov.hit("put.block1_disabled")
                return self._reply(ACK, 0x82, mid, token)
            return self._handle_put_block(mid, token, path, block1[0][1], payload)
        self._resources[path] = payload
        cov.hit("put.stored")
        reply = self._reply(ACK, 0x44, mid, token)  # 2.04 Changed
        return reply + self._notify_observers(path)

    def _handle_put_block(self, mid: int, token: bytes, path: str,
                          block_value: bytes, payload: bytes) -> bytes:
        """RFC 7959 Block1 reassembly (coap_handle_request_put_block)."""
        cov = self.cov
        num, more, szx = self._decode_block(block_value)
        cov.hit("put.block1.num_nonzero" if num else "put.block1.first")
        received, body = self._put_blocks.get(path, (set(), None))
        if path not in self._put_blocks:
            # lg_srcv not found in this session: body_data starts NULL
            # (Figure 5, line 6).
            cov.hit("put.block1.new_lg_srcv")
            self._put_blocks[path] = (received, body)
        if num == 0:
            body = bytearray()
            cov.hit("put.block1.body_alloc")
        if body is not None:
            body.extend(payload)
        received.add(num)
        self._put_blocks[path] = (received, body)
        if cov.branch("put.block1.more", bool(more)):
            return self._reply(ACK, 0x5F, mid, token)  # 2.31 Continue
        # Final block: reassemble.
        if cov.branch("put.block1.incomplete",
                      body is None or len(received) != num + 1):
            if body is None:
                cov.hit("put.block1.body_null_recovered")
                self._put_blocks.pop(path, None)
                return self._reply(ACK, 0x88, mid, token)  # 4.08 incomplete
            cov.hit("put.block1.gap_recovered")
            self._put_blocks.pop(path, None)
            return self._reply(ACK, 0x88, mid, token)
        self._resources[path] = bytes(body)
        self._put_blocks.pop(path, None)
        cov.hit("put.block1.reassembled")
        return self._reply(ACK, 0x44, mid, token)

    def _handle_put_qblock(self, mid: int, token: bytes, path: str,
                           block_value: bytes, payload: bytes) -> bytes:
        """RFC 9177 Q-Block1 (the Figure-5 case-study path, Bug #8)."""
        cov = self.cov
        cov.hit("put.qblock1.enter")
        num, more, szx = self._decode_block(block_value)
        received, body = self._put_blocks.get(path, (set(), None))
        if path not in self._put_blocks:
            cov.hit("put.qblock1.new_lg_srcv")  # body_data = NULL
            self._put_blocks[path] = (received, body)
        if num == 0:
            body = bytearray()
            cov.hit("put.qblock1.body_alloc")
        if body is not None:
            body.extend(payload)
        received.add(num)
        self._put_blocks[path] = (received, body)
        if cov.branch("put.qblock1.more", bool(more)):
            return self._reply(NON, 0x5F, mid, token)
        # Q-Block considers the transfer complete once the final block
        # arrives (line 12 of Figure 5) and jumps to give_app_data.
        cov.hit("put.qblock1.give_app_data")
        if body is None:
            # Bug #8 (Table II, case study): pdu->body_data =
            # lg_srcv->body_data->s dereferences NULL because block 0
            # never arrived and body_data was never allocated.
            raise SanitizerFault(
                FaultKind.SEGV,
                "coap_handle_request_put_block",
                "NULL lg_srcv->body_data dereferenced at give_app_data",
            )
        self._resources[path] = bytes(body)
        self._put_blocks.pop(path, None)
        cov.hit("put.qblock1.reassembled")
        return self._reply(NON, 0x44, mid, token)

    def _handle_post(self, mid: int, token: bytes, path: str, payload: bytes) -> bytes:
        cov = self.cov
        cov.hit("post.enter")
        if cov.branch("post.create", path not in self._resources):
            self._resources[path] = payload
            return self._reply(ACK, 0x41, mid, token)  # 2.01 Created
        self._resources[path] = payload
        return self._reply(ACK, 0x44, mid, token)

    def _handle_observe(self, code: int, mid: int, token: bytes, path: str,
                        options: List[Tuple[int, bytes]]) -> bytes:
        cov = self.cov
        cov.hit("observe.enter")
        value = next(o[1] for o in options if o[0] == OPT_OBSERVE)
        register = not value or value == b"\x00"
        if cov.branch("observe.register", register):
            if path not in self._resources:
                cov.hit("observe.unknown_resource")
                return self._reply(ACK, 0x84, mid, token)
            self._observers[path] = self._observers.get(path, 0) + 1
            if int(self.cfg("max-sessions")) and len(self._observers) > int(self.cfg("max-sessions")):
                cov.hit("observe.table_full")
                return self._reply(ACK, 0xA0, mid, token)  # 5.00
            return self._reply(ACK, 0x45, mid, token, self._resources[path])
        if cov.branch("observe.deregister_known", path in self._observers):
            del self._observers[path]
        return self._reply(ACK, 0x45, mid, token)

    # -- helpers -----------------------------------------------------------

    def _notify_observers(self, path: str) -> bytes:
        """RFC 7641: push a notification when an observed resource changes."""
        cov = self.cov
        if not self.enabled("observe"):
            return b""
        if cov.branch("observe.notify", path in self._observers):
            self._observe_seq = getattr(self, "_observe_seq", 0) + 1
            cov.hit("observe.notification_sent")
            if self._observe_seq > 0xFFFFFF:
                cov.hit("observe.seq_wrap")
                self._observe_seq = 1
            body = self._resources.get(path, b"")
            return self._reply(NON, 0x45, 0x7000 + (self._observe_seq & 0xFF),
                               b"", body)
        return b""

    def _decode_block(self, value: bytes) -> Tuple[int, int, int]:
        """Decode a Block1/Block2/Q-Block option value (RFC 7959 §2.2)."""
        cov = self.cov
        if len(value) > 3:
            cov.hit("block.value_too_long")
            raise _ParseError("block option longer than 3 bytes")
        raw = int.from_bytes(value, "big") if value else 0
        szx = raw & 0x07
        more = (raw >> 3) & 0x01
        num = raw >> 4
        cov.hit("block.decoded")
        return num, more, szx

    def _reply(self, mtype: int, code: int, mid: int, token: bytes,
               payload: bytes = b"") -> bytes:
        header = bytes([(1 << 6) | (mtype << 4) | len(token), code]) + mid.to_bytes(2, "big")
        body = header + token
        if payload:
            body += b"\xff" + payload
        return body


_KNOWN_OPTIONS = frozenset(
    (1, 3, 4, 5, OPT_OBSERVE, 7, 8, OPT_URI_PATH, OPT_CONTENT_FORMAT, 14,
     OPT_URI_QUERY, 17, OPT_QBLOCK1, 20, OPT_BLOCK2, 25, OPT_BLOCK1, 28,
     OPT_SIZE1, 35, 39)
)
