"""The libcoap-style configuration surface: CLI options.

``CLI_HELP`` mirrors a ``coap-server --help`` text; the pattern-matching
CLI parser extracts items from it.
"""

from repro.core.entity import Flag, ValueType
from repro.core.extraction import ConfigSources

CLI_HELP = """\
Usage: coap-server [OPTIONS]
  --port=5683            UDP listen port (default: 5683)
  --block-transfer       enable RFC 7959 block-wise transfers
  --block-size SIZE      preferred block size, one of: 16, 32, 64, 128, 256, 512, 1024
  --qblock               enable Q-Block1/Q-Block2 (RFC 9177) robust transfers
  --observe              enable resource observation (RFC 7641)
  --multicast            join the all-CoAP-nodes multicast group
  --dtls                 serve coaps:// over DTLS
  --psk KEY              DTLS pre-shared key
  --cert-file=/etc/coap/server.crt  DTLS certificate file
  --max-sessions=100     concurrent session limit (default: 100)
  --session-timeout=300  idle session timeout seconds (default: 300)
  --nstart=1             outstanding interactions (default: 1)
  --max-resource-size=4096  maximum PUT body size (default: 4096)
  --verbose              verbose logging
"""

ENTITY_OVERRIDES = {
    "block-size": {"values": (64, 16, 256, 1024)},
    "psk": {"values": ("", "coap-secret"), "flag": Flag.MUTABLE,
            "type": ValueType.STRING},
}


def config_sources() -> ConfigSources:
    return ConfigSources(cli_options=(CLI_HELP,))


DEFAULT_CONFIG = {
    "port": 5683,
    "block-transfer": False,
    "block-size": 64,
    "qblock": False,
    "observe": False,
    "multicast": False,
    "dtls": False,
    "psk": "",
    "cert-file": "/etc/coap/server.crt",
    "max-sessions": 100,
    "session-timeout": 300,
    "nstart": 1,
    "max-resource-size": 4096,
    "verbose": False,
}
