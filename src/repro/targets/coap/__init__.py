"""libcoap-style CoAP server target."""

from repro.targets.coap.server import LibcoapTarget

__all__ = ["LibcoapTarget"]
