"""libcoap-style CoAP server target."""

from repro.pits.coap import state_model
from repro.targets.coap.server import LibcoapTarget
from repro.targets.registry import load_manifest, register_target

MANIFEST = load_manifest(__file__)
register_target(MANIFEST.name, LibcoapTarget, state_model, MANIFEST)

__all__ = ["LibcoapTarget", "MANIFEST"]
