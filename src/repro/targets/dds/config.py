"""The CycloneDDS-style configuration surface: hierarchical XML.

Mirrors the ``cyclonedds.xml`` structure; the hierarchical file parser
flattens it into dotted-path configuration items. DDS's structured
configuration management restricts diversity (the paper's explanation for
CMFuzz's modest gains here): most knobs tune internals rather than gate
whole subsystems.
"""

from repro.core.entity import Flag
from repro.core.extraction import ConfigSources

CONFIG_XML = """\
<CycloneDDS>
  <Domain id="0">
    <General>
      <NetworkInterfaceAddress>auto</NetworkInterfaceAddress>
      <AllowMulticast>true</AllowMulticast>
      <MaxMessageSize>14720</MaxMessageSize>
      <FragmentSize>1344</FragmentSize>
    </General>
    <Discovery>
      <ParticipantIndex>auto</ParticipantIndex>
      <MaxAutoParticipantIndex>9</MaxAutoParticipantIndex>
      <SPDPInterval>30</SPDPInterval>
    </Discovery>
    <Internal>
      <RetransmitMerging>never</RetransmitMerging>
      <HeartbeatInterval>100</HeartbeatInterval>
      <WhcHigh>500</WhcHigh>
      <WhcLow>100</WhcLow>
      <DeliveryQueueMaxSamples>256</DeliveryQueueMaxSamples>
    </Internal>
    <Tracing>
      <Verbosity>warning</Verbosity>
      <OutputFile>/var/log/cyclonedds.log</OutputFile>
    </Tracing>
  </Domain>
</CycloneDDS>
"""

ENTITY_OVERRIDES = {
    "Domain.General.NetworkInterfaceAddress": {"flag": Flag.IMMUTABLE},
    "Domain.Discovery.ParticipantIndex": {
        "values": ("auto", "none", "0", "5"),
        "flag": Flag.MUTABLE,
    },
    "Domain.Internal.RetransmitMerging": {
        "values": ("never", "adaptive", "always"),
        "flag": Flag.MUTABLE,
    },
    "Domain.Tracing.Verbosity": {
        "values": ("warning", "none", "finest"),
        "flag": Flag.MUTABLE,
    },
    "Domain.id": {"flag": Flag.IMMUTABLE},
}


def config_sources() -> ConfigSources:
    return ConfigSources(files=(("cyclonedds.xml", CONFIG_XML),))


DEFAULT_CONFIG = {
    "Domain.id": "0",
    "Domain.General.NetworkInterfaceAddress": "auto",
    "Domain.General.AllowMulticast": True,
    "Domain.General.MaxMessageSize": 14720,
    "Domain.General.FragmentSize": 1344,
    "Domain.Discovery.ParticipantIndex": "auto",
    "Domain.Discovery.MaxAutoParticipantIndex": 9,
    "Domain.Discovery.SPDPInterval": 30,
    "Domain.Internal.RetransmitMerging": "never",
    "Domain.Internal.HeartbeatInterval": 100,
    "Domain.Internal.WhcHigh": 500,
    "Domain.Internal.WhcLow": 100,
    "Domain.Internal.DeliveryQueueMaxSamples": 256,
    "Domain.Tracing.Verbosity": "warning",
    "Domain.Tracing.OutputFile": "/var/log/cyclonedds.log",
}
