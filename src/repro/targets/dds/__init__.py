"""CycloneDDS-style DDS/RTPS target."""

from repro.pits.dds import state_model
from repro.targets.dds.server import CycloneDdsTarget
from repro.targets.registry import load_manifest, register_target

MANIFEST = load_manifest(__file__)
register_target(MANIFEST.name, CycloneDdsTarget, state_model, MANIFEST)

__all__ = ["CycloneDdsTarget", "MANIFEST"]
