"""CycloneDDS-style DDS/RTPS target."""

from repro.targets.dds.server import CycloneDdsTarget

__all__ = ["CycloneDdsTarget"]
