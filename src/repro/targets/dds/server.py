"""A CycloneDDS-style RTPS participant.

Parses RTPS messages: the 20-byte header (magic, protocol version, vendor
id, guid prefix) followed by a submessage stream — DATA, DATA_FRAG,
HEARTBEAT, ACKNACK, GAP, INFO_TS, INFO_DST, INFO_SRC, PAD, NACK_FRAG.
The submessage loop is deliberately branch-rich: this is the paper's
largest-coverage subject. Configuration gates fewer subsystems than MQTT
or DNS (structured management limits diversity), so CMFuzz's relative
gain is modest here — matching Table I.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from repro.errors import StartupError
from repro.targets.base import ProtocolTarget
from repro.targets.dds import config as dds_config

# Submessage kinds (RTPS 2.2).
PAD = 0x01
ACKNACK = 0x06
HEARTBEAT = 0x07
GAP = 0x08
INFO_TS = 0x09
INFO_SRC = 0x0C
INFO_REPLY_IP4 = 0x0D
INFO_DST = 0x0E
INFO_REPLY = 0x0F
NACK_FRAG = 0x12
HEARTBEAT_FRAG = 0x13
DATA = 0x15
DATA_FRAG = 0x16

_RTPS_MAGIC = b"RTPS"

# Builtin discovery writer entity ids.
_ENTITY_SPDP_WRITER = 0x000100C2
_ENTITY_SEDP_PUB_WRITER = 0x000003C2
_ENTITY_SEDP_SUB_WRITER = 0x000004C2

# Discovery parameter ids.
_PID_PARTICIPANT_GUID = 0x0050
_PID_BUILTIN_ENDPOINT_SET = 0x0058
_PID_DEFAULT_UNICAST_LOCATOR = 0x0031
_PID_LEASE_DURATION = 0x0002
_PID_TOPIC_NAME = 0x0005
_PID_TYPE_NAME = 0x0007

_TRACEABLE_KINDS = frozenset(
    (PAD, ACKNACK, HEARTBEAT, GAP, INFO_TS, INFO_SRC, INFO_REPLY_IP4,
     INFO_DST, INFO_REPLY, NACK_FRAG, HEARTBEAT_FRAG, DATA, DATA_FRAG)
)


class _ParseError(Exception):
    """Malformed message; the participant drops it."""


class CycloneDdsTarget(ProtocolTarget):
    """The DDS/RTPS participant target."""

    NAME = "cyclonedds"
    PROTOCOL = "DDS"
    PORT = 7400

    @classmethod
    def config_sources(cls):
        return dds_config.config_sources()

    @classmethod
    def entity_overrides(cls):
        return dict(dds_config.ENTITY_OVERRIDES)

    @classmethod
    def default_config(cls) -> Dict[str, Any]:
        return dict(dds_config.DEFAULT_CONFIG)

    # -- startup ---------------------------------------------------------

    def _startup_impl(self) -> None:
        cov = self.cov
        cov.hit("startup.enter")
        whc_high = int(self.cfg("Domain.Internal.WhcHigh"))
        whc_low = int(self.cfg("Domain.Internal.WhcLow"))
        if whc_low > whc_high:
            cov.hit("startup.conflict.whc_inverted")
            raise StartupError(
                "WhcLow must not exceed WhcHigh",
                ("Domain.Internal.WhcLow", "Domain.Internal.WhcHigh"),
            )
        fragment = int(self.cfg("Domain.General.FragmentSize"))
        max_message = int(self.cfg("Domain.General.MaxMessageSize"))
        if fragment > max_message:
            cov.hit("startup.conflict.fragment_over_max")
            raise StartupError(
                "FragmentSize exceeds MaxMessageSize",
                ("Domain.General.FragmentSize", "Domain.General.MaxMessageSize"),
            )
        index = str(self.cfg("Domain.Discovery.ParticipantIndex"))
        if index == "auto":
            cov.hit("startup.discovery.auto_index")
            if int(self.cfg("Domain.Discovery.MaxAutoParticipantIndex")) < 1:
                cov.hit("startup.conflict.auto_index_zero")
                raise StartupError(
                    "auto ParticipantIndex needs MaxAutoParticipantIndex >= 1",
                    ("Domain.Discovery.ParticipantIndex",
                     "Domain.Discovery.MaxAutoParticipantIndex"),
                )
        elif index == "none":
            cov.hit("startup.discovery.no_index")
        else:
            cov.hit("startup.discovery.fixed_index")
        if cov.branch("startup.multicast",
                      self.enabled("Domain.General.AllowMulticast")):
            cov.hit("startup.multicast.spdp_group")
            if int(self.cfg("Domain.Discovery.SPDPInterval")) < 5:
                cov.hit("startup.multicast.aggressive_spdp")
        else:
            cov.hit("startup.unicast_only")
        merging = str(self.cfg("Domain.Internal.RetransmitMerging"))
        if merging == "adaptive":
            cov.hit("startup.retransmit.adaptive")
        elif merging == "always":
            cov.hit("startup.retransmit.always")
        else:
            cov.hit("startup.retransmit.never")
        if int(self.cfg("Domain.Internal.HeartbeatInterval")) == 0:
            cov.hit("startup.heartbeat_disabled")
        verbosity = str(self.cfg("Domain.Tracing.Verbosity"))
        cov.hit("startup.tracing.%s" % (verbosity if verbosity in
                                        ("none", "warning", "finest") else "other"))
        if int(self.cfg("Domain.Internal.DeliveryQueueMaxSamples")) == 0:
            cov.hit("startup.delivery_unbounded")
        cov.hit("startup.complete")

    # -- session ---------------------------------------------------------

    def reset_session(self) -> None:
        self._timestamp: Optional[int] = None
        self._dst_set = False
        self._writers: Dict[int, int] = {}  # writer id -> highest seq
        self._fragments: Dict[Tuple[int, int], set] = {}
        self._delivered = 0
        self._participants: Dict[bytes, int] = {}  # guid prefix -> endpoint set

    # -- parsing -----------------------------------------------------------

    def handle_packet(self, data: bytes) -> bytes:
        self.require_started()
        cov = self.cov
        try:
            return self._dispatch(data)
        except _ParseError:
            cov.hit("packet.malformed")
            return b""

    def _dispatch(self, data: bytes) -> bytes:
        cov = self.cov
        if len(data) < 20:
            cov.hit("packet.runt")
            raise _ParseError("short RTPS header")
        if cov.branch("header.bad_magic", data[0:4] != _RTPS_MAGIC):
            raise _ParseError("bad magic")
        major, minor = data[4], data[5]
        if cov.branch("header.version_unknown", major != 2):
            raise _ParseError("unsupported protocol version")
        cov.hit("header.minor.%d" % minor if minor <= 4 else "header.minor.future")
        vendor = int.from_bytes(data[6:8], "big")
        if vendor == 0x0110:
            cov.hit("header.vendor.eclipse")
        elif vendor == 0x0101:
            cov.hit("header.vendor.rti")
        else:
            cov.hit("header.vendor.other")
        if int(self.cfg("Domain.General.MaxMessageSize")) < len(data):
            cov.hit("packet.over_max_message")
            return b""
        position = 20
        submessages = 0
        acknacks: List[bytes] = []
        while position + 4 <= len(data):
            submessages += 1
            if cov.branch("subm.flood", submessages > 64):
                break
            kind = data[position]
            flags = data[position + 1]
            little = bool(flags & 0x01)
            length = int.from_bytes(
                data[position + 2 : position + 4], "little" if little else "big"
            )
            body_start = position + 4
            if cov.branch("subm.truncated", body_start + length > len(data)):
                if kind == PAD:
                    cov.hit("subm.pad_tail")
                    break
                raise _ParseError("submessage truncated")
            body = data[body_start : body_start + length]
            reply = self._handle_submessage(kind, flags, little, body)
            if reply:
                acknacks.append(reply)
            if length == 0 and kind not in (PAD, INFO_TS):
                cov.hit("subm.zero_length_terminator")
                break
            position = body_start + length
        if cov.branch("packet.no_submessages", submessages == 0):
            raise _ParseError("header only")
        return b"".join(acknacks)

    def _handle_submessage(self, kind: int, flags: int, little: bool,
                           body: bytes) -> bytes:
        cov = self.cov
        order = "little" if little else "big"
        if str(self.cfg("Domain.Tracing.Verbosity")) == "finest":
            # Finest tracing formats every submessage before handling it.
            cov.hit("trace.subm.%d" % kind if kind in _TRACEABLE_KINDS
                    else "trace.subm.other")
        if kind == DATA:
            cov.hit("subm.data")
            if len(body) < 16:
                cov.hit("subm.data.short")
                raise _ParseError("DATA too short")
            reader = int.from_bytes(body[0:4], order)
            writer = int.from_bytes(body[4:8], order)
            seq = int.from_bytes(body[8:16], order)
            if cov.branch("subm.data.builtin",
                          writer in (_ENTITY_SPDP_WRITER, _ENTITY_SEDP_PUB_WRITER,
                                     _ENTITY_SEDP_SUB_WRITER)):
                return self._handle_discovery_data(writer, body[16:], order)
            entity_kind = writer & 0xFF
            if entity_kind == 0x02:
                cov.hit("subm.data.user_keyed_writer")
            elif entity_kind == 0x03:
                cov.hit("subm.data.user_nokey_writer")
            else:
                cov.hit("subm.data.odd_entity_kind")
            if cov.branch("subm.data.inline_qos", bool(flags & 0x02)):
                self._parse_inline_qos(body[16:], order)
            if cov.branch("subm.data.keyed", bool(flags & 0x08)):
                cov.hit("subm.data.key_digest")
            highest = self._writers.get(writer, 0)
            if cov.branch("subm.data.out_of_order", seq <= highest):
                merging = str(self.cfg("Domain.Internal.RetransmitMerging"))
                if merging == "always":
                    cov.hit("subm.data.merge_always")
                elif merging == "adaptive":
                    cov.hit("subm.data.merge_adaptive")
                else:
                    cov.hit("subm.data.dropped_dup")
                return b""
            self._writers[writer] = seq
            self._delivered += 1
            limit = int(self.cfg("Domain.Internal.DeliveryQueueMaxSamples"))
            if cov.branch("subm.data.queue_full",
                          limit > 0 and self._delivered % max(limit, 1) == 0):
                cov.hit("subm.data.backpressure")
            if self._timestamp is not None:
                cov.hit("subm.data.timestamped")
            return b""
        if kind == DATA_FRAG:
            cov.hit("subm.data_frag")
            if len(body) < 20:
                raise _ParseError("DATA_FRAG too short")
            writer = int.from_bytes(body[4:8], order)
            seq = int.from_bytes(body[8:16], order)
            frag_num = int.from_bytes(body[16:20], order)
            frag_size = int(self.cfg("Domain.General.FragmentSize"))
            if cov.branch("subm.frag.zero", frag_num == 0):
                raise _ParseError("fragment number 0")
            key = (writer, seq)
            bucket = self._fragments.setdefault(key, set())
            if cov.branch("subm.frag.dup", frag_num in bucket):
                return b""
            bucket.add(frag_num)
            if len(bucket) * frag_size > int(self.cfg("Domain.General.MaxMessageSize")):
                cov.hit("subm.frag.reassembly_overflow_guard")
                self._fragments.pop(key, None)
            return b""
        if kind == HEARTBEAT:
            cov.hit("subm.heartbeat")
            if len(body) < 24:
                raise _ParseError("HEARTBEAT too short")
            first = int.from_bytes(body[8:16], order)
            last = int.from_bytes(body[16:24], order)
            if cov.branch("subm.hb.invalid_range", first > last + 1):
                raise _ParseError("invalid heartbeat range")
            if cov.branch("subm.hb.final", bool(flags & 0x02)):
                return b""
            if cov.branch("subm.hb.liveliness", bool(flags & 0x04)):
                cov.hit("subm.hb.manual_liveliness")
            # Respond with an ACKNACK covering the advertised range.
            cov.hit("subm.hb.acknack_reply")
            return bytes([ACKNACK, 0x01, 24, 0]) + body[0:8] + body[8:24]
        if kind == ACKNACK:
            cov.hit("subm.acknack")
            if len(body) < 12:
                raise _ParseError("ACKNACK too short")
            if cov.branch("subm.acknack.final", bool(flags & 0x02)):
                return b""
            whc_high = int(self.cfg("Domain.Internal.WhcHigh"))
            if cov.branch("subm.acknack.whc_pressure", whc_high < 200):
                cov.hit("subm.acknack.throttle")
            return b""
        if kind == GAP:
            cov.hit("subm.gap")
            if len(body) < 16:
                raise _ParseError("GAP too short")
            return b""
        if kind == INFO_TS:
            if cov.branch("subm.info_ts.invalidate", bool(flags & 0x02)):
                self._timestamp = None
            else:
                if len(body) < 8:
                    raise _ParseError("INFO_TS too short")
                self._timestamp = int.from_bytes(body[0:8], order)
                cov.hit("subm.info_ts.set")
            return b""
        if kind == INFO_DST:
            cov.hit("subm.info_dst")
            if len(body) < 12:
                raise _ParseError("INFO_DST too short")
            self._dst_set = True
            return b""
        if kind == INFO_SRC:
            cov.hit("subm.info_src")
            if len(body) < 20:
                raise _ParseError("INFO_SRC too short")
            return b""
        if kind in (INFO_REPLY, INFO_REPLY_IP4):
            cov.hit("subm.info_reply")
            if not self.enabled("Domain.General.AllowMulticast") and bool(flags & 0x02):
                cov.hit("subm.info_reply.multicast_ignored")
            return b""
        if kind == NACK_FRAG:
            cov.hit("subm.nack_frag")
            if len(body) < 16:
                raise _ParseError("NACK_FRAG too short")
            return b""
        if kind == HEARTBEAT_FRAG:
            cov.hit("subm.heartbeat_frag")
            if len(body) < 20:
                raise _ParseError("HEARTBEAT_FRAG too short")
            return b""
        if kind == PAD:
            cov.hit("subm.pad")
            return b""
        cov.hit("subm.unknown_kind")
        return self._unknown_submessage(flags)

    def _handle_discovery_data(self, writer: int, payload: bytes, order: str) -> bytes:
        """Parse SPDP/SEDP discovery announcements (builtin writers)."""
        cov = self.cov
        if writer == _ENTITY_SPDP_WRITER:
            cov.hit("disc.spdp")
        elif writer == _ENTITY_SEDP_PUB_WRITER:
            cov.hit("disc.sedp_pub")
        else:
            cov.hit("disc.sedp_sub")
        if len(payload) < 4:
            cov.hit("disc.no_encapsulation")
            raise _ParseError("discovery data without encapsulation header")
        scheme = int.from_bytes(payload[0:2], "big")
        if scheme == 0x0002:
            cov.hit("disc.cdr_le")
            order = "little"
        elif scheme == 0x0000:
            cov.hit("disc.cdr_be")
            order = "big"
        else:
            cov.hit("disc.unknown_encapsulation")
            raise _ParseError("unknown encapsulation scheme")
        position = 4
        guid_prefix: Optional[bytes] = None
        endpoint_set = 0
        parameters = 0
        data = payload
        while position + 4 <= len(data):
            pid = int.from_bytes(data[position : position + 2], order)
            length = int.from_bytes(data[position + 2 : position + 4], order)
            position += 4
            if cov.branch("disc.sentinel", pid == self._PID_SENTINEL):
                break
            if position + length > len(data):
                cov.hit("disc.param_truncated")
                raise _ParseError("discovery parameter truncated")
            value = data[position : position + length]
            position += length
            parameters += 1
            if cov.branch("disc.flood", parameters > 24):
                raise _ParseError("discovery parameter flood")
            if pid == _PID_PARTICIPANT_GUID:
                cov.hit("disc.pid.guid")
                if len(value) < 12:
                    cov.hit("disc.guid_short")
                    raise _ParseError("participant GUID too short")
                guid_prefix = value[:12]
            elif pid == _PID_BUILTIN_ENDPOINT_SET:
                cov.hit("disc.pid.endpoints")
                if len(value) >= 4:
                    endpoint_set = int.from_bytes(value[:4], order)
            elif pid == _PID_DEFAULT_UNICAST_LOCATOR:
                cov.hit("disc.pid.locator")
                if len(value) < 24:
                    raise _ParseError("locator too short")
            elif pid == _PID_LEASE_DURATION:
                cov.hit("disc.pid.lease")
                if len(value) >= 4 and int.from_bytes(value[:4], order) == 0:
                    cov.hit("disc.zero_lease")
            elif pid == _PID_TOPIC_NAME:
                cov.hit("disc.pid.topic")
            elif pid == _PID_TYPE_NAME:
                cov.hit("disc.pid.type")
            else:
                cov.hit("disc.pid.other")
        if writer == _ENTITY_SPDP_WRITER:
            if cov.branch("disc.spdp_valid", guid_prefix is not None):
                known = guid_prefix in self._participants
                self._participants[guid_prefix] = endpoint_set
                if cov.branch("disc.participant_refresh", known):
                    return b""
                index = str(self.cfg("Domain.Discovery.ParticipantIndex"))
                if index == "auto" and len(self._participants) > int(
                        self.cfg("Domain.Discovery.MaxAutoParticipantIndex")):
                    cov.hit("disc.participant_table_full")
                    self._participants.pop(guid_prefix, None)
                return b""
            raise _ParseError("SPDP announcement without GUID")
        if cov.branch("disc.sedp_before_spdp", not self._participants):
            return b""
        return b""

    #: Known inline-QoS parameter ids (RTPS PIDs).
    _KNOWN_PIDS = frozenset(
        (0x0002, 0x0004, 0x0005, 0x0007, 0x000B, 0x0015, 0x001A, 0x001B,
         0x001D, 0x001E, 0x0023, 0x0025, 0x002B, 0x0030, 0x0052, 0x0070,
         0x0071)
    )
    _PID_SENTINEL = 0x0001

    def _parse_inline_qos(self, data: bytes, order: str) -> None:
        """Walk a parameter list (PID / length / value triples)."""
        cov = self.cov
        cov.hit("qos.walk")
        position = 0
        parameters = 0
        while position + 4 <= len(data):
            pid = int.from_bytes(data[position : position + 2], order)
            length = int.from_bytes(data[position + 2 : position + 4], order)
            position += 4
            if cov.branch("qos.sentinel", pid == self._PID_SENTINEL):
                return
            if cov.branch("qos.odd_length", length % 4 != 0):
                raise _ParseError("parameter length not 4-aligned")
            if position + length > len(data):
                cov.hit("qos.value_truncated")
                raise _ParseError("parameter value truncated")
            cov.hit("qos.pid.%#06x" % pid if pid in self._KNOWN_PIDS
                    else "qos.pid.unknown")
            if pid == 0x0071 and length >= 4:
                status = int.from_bytes(data[position : position + 4], order)
                if status & 0x01:
                    cov.hit("qos.status.disposed")
                if status & 0x02:
                    cov.hit("qos.status.unregistered")
            position += length
            parameters += 1
            if cov.branch("qos.flood", parameters > 32):
                raise _ParseError("parameter list too long")
        cov.hit("qos.missing_sentinel")

    def _unknown_submessage(self, flags: int) -> bytes:
        cov = self.cov
        if cov.branch("subm.unknown_must_understand", bool(flags & 0x80)):
            raise _ParseError("unknown must-understand submessage")
        return b""
