"""Sanitizer-style fault taxonomy, crash reports and deduplication.

The paper's targets run under AddressSanitizer; crashes surface as
sanitizer reports (heap-use-after-free, SEGV, ...). Our targets raise
:class:`SanitizerFault` from the faulty code path carrying the same
signal: the fault kind and the affected function. :class:`BugLedger`
deduplicates reports by signature, mirroring crash triage.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, List, Tuple


class FaultKind(enum.Enum):
    """AddressSanitizer-style fault categories used in Table II."""

    HEAP_USE_AFTER_FREE = "heap-use-after-free"
    SEGV = "SEGV"
    MEMORY_LEAK = "memory leaks"
    STACK_BUFFER_OVERFLOW = "stack-buffer-overflow"
    HEAP_BUFFER_OVERFLOW = "heap-buffer-overflow"
    ALLOCATION_SIZE_TOO_BIG = "allocation-size-too-big"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


class SanitizerFault(Exception):
    """Raised by target code when an injected bug fires.

    Attributes:
        kind: The sanitizer fault category.
        function: The affected function (Table II's third column).
        detail: Free-form description of the faulting condition.
    """

    def __init__(self, kind: FaultKind, function: str, detail: str = ""):
        super().__init__("%s in %s%s" % (kind.value, function, ": " + detail if detail else ""))
        self.kind = kind
        self.function = function
        self.detail = detail


@dataclass(frozen=True)
class CrashReport:
    """A triaged crash observation."""

    protocol: str
    kind: FaultKind
    function: str
    detail: str = ""
    sim_time: float = 0.0
    instance: int = -1

    @property
    def signature(self) -> Tuple[str, str, str]:
        """Dedup key: (protocol, fault kind, function)."""
        return (self.protocol, self.kind.value, self.function)

    @classmethod
    def from_fault(cls, fault: SanitizerFault, protocol: str,
                   sim_time: float = 0.0, instance: int = -1) -> "CrashReport":
        return cls(
            protocol=protocol,
            kind=fault.kind,
            function=fault.function,
            detail=fault.detail,
            sim_time=sim_time,
            instance=instance,
        )


class BugLedger:
    """Collects crash reports, deduplicating by signature."""

    def __init__(self):
        self._first_seen: Dict[Tuple[str, str, str], CrashReport] = {}
        self._counts: Dict[Tuple[str, str, str], int] = {}

    def record(self, report: CrashReport) -> bool:
        """Record a report; returns True if the signature is new."""
        signature = report.signature
        self._counts[signature] = self._counts.get(signature, 0) + 1
        if signature not in self._first_seen:
            self._first_seen[signature] = report
            return True
        return False

    def unique_bugs(self) -> List[CrashReport]:
        """First-seen report per unique signature, ordered by discovery."""
        return sorted(self._first_seen.values(), key=lambda r: r.sim_time)

    def count(self, signature: Tuple[str, str, str]) -> int:
        return self._counts.get(signature, 0)

    def snapshot(self) -> List[Tuple["CrashReport", int]]:
        """First-seen reports with their observation counts, in insertion
        order — a picklable, order-preserving serialization of the ledger."""
        return [
            (report, self._counts[signature])
            for signature, report in self._first_seen.items()
        ]

    @classmethod
    def from_snapshot(cls, entries: List[Tuple["CrashReport", int]]) -> "BugLedger":
        """Rebuild a ledger from :meth:`snapshot` output, bit-for-bit."""
        ledger = cls()
        for report, count in entries:
            ledger._first_seen[report.signature] = report
            ledger._counts[report.signature] = count
        return ledger

    def merge(self, other: "BugLedger") -> None:
        for signature, report in other._first_seen.items():
            self._counts[signature] = (
                self._counts.get(signature, 0) + other._counts[signature]
            )
            existing = self._first_seen.get(signature)
            if existing is None or report.sim_time < existing.sim_time:
                self._first_seen[signature] = report

    def __len__(self) -> int:
        return len(self._first_seen)

    def __contains__(self, signature: Tuple[str, str, str]) -> bool:
        return signature in self._first_seen

    def __repr__(self) -> str:
        return "BugLedger(%d unique bugs)" % len(self._first_seen)


#: The 14 previously-unknown bugs of Table II, as dedup signatures.
TABLE_II_BUGS: Tuple[Tuple[str, str, str], ...] = (
    ("MQTT", "heap-use-after-free", "Connection::newMessage"),
    ("MQTT", "heap-use-after-free", "neu_node_manager_get_addrs_all"),
    ("MQTT", "heap-use-after-free", "mqtt_packet_destroy"),
    ("MQTT", "SEGV", "loop_accepted"),
    ("MQTT", "memory leaks", "multiple functions"),
    ("CoAP", "SEGV", "coap_clean_options"),
    ("CoAP", "stack-buffer-overflow", "CoapPDU::getOptionDelta"),
    ("CoAP", "SEGV", "coap_handle_request_put_block"),
    ("AMQP", "stack-buffer-overflow", "pthread_create"),
    ("DNS", "stack-buffer-overflow", "get16bits"),
    ("DNS", "heap-buffer-overflow", "dns_question_parse, dns_request_parse"),
    ("DNS", "allocation-size-too-big", "dns_request_parse"),
    ("DNS", "heap-buffer-overflow", "printf_common"),
    ("DNS", "heap-buffer-overflow", "config_parse"),
)
