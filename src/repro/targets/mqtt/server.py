"""A Mosquitto-style MQTT broker with configuration-gated behaviour.

Implements enough of MQTT v3.1/v3.1.1/v5.0 to be a meaningful fuzzing
subject: CONNECT (with will, auth and v5 properties), PUBLISH across all
QoS levels (including the QoS 2 PUBREC/PUBREL/PUBCOMP flow), SUBSCRIBE /
UNSUBSCRIBE with wildcard validation, PING and DISCONNECT. Carries the
five MQTT bugs of Table II, each gated on non-default configuration
and/or specific packet shapes.
"""

from __future__ import annotations

from typing import Any, Dict, List

from repro.errors import StartupError
from repro.targets.base import ProtocolTarget
from repro.targets.faults import FaultKind, SanitizerFault
from repro.targets.mqtt import config as mqtt_config

# MQTT control packet types (high nibble of the first byte).
CONNECT = 1
CONNACK = 2
PUBLISH = 3
PUBACK = 4
PUBREC = 5
PUBREL = 6
PUBCOMP = 7
SUBSCRIBE = 8
SUBACK = 9
UNSUBSCRIBE = 10
UNSUBACK = 11
PINGREQ = 12
PINGRESP = 13
DISCONNECT = 14
AUTH = 15

_PROTOCOL_LEVELS = {3: "mqttv31", 4: "mqttv311", 5: "mqttv50"}

#: Leaked bytes threshold before the accumulated leak is reported.
_LEAK_THRESHOLD = 8 << 10


class _ParseError(Exception):
    """Internal: malformed packet, session survives."""


class _Reader:
    """Cursor over a packet body with bounds-checked reads."""

    def __init__(self, data: bytes):
        self.data = data
        self.pos = 0

    def remaining(self) -> int:
        return len(self.data) - self.pos

    def u8(self) -> int:
        if self.remaining() < 1:
            raise _ParseError("short read (u8)")
        value = self.data[self.pos]
        self.pos += 1
        return value

    def u16(self) -> int:
        if self.remaining() < 2:
            raise _ParseError("short read (u16)")
        value = int.from_bytes(self.data[self.pos : self.pos + 2], "big")
        self.pos += 2
        return value

    def u32(self) -> int:
        if self.remaining() < 4:
            raise _ParseError("short read (u32)")
        value = int.from_bytes(self.data[self.pos : self.pos + 4], "big")
        self.pos += 4
        return value

    def take(self, length: int) -> bytes:
        if length < 0 or self.remaining() < length:
            raise _ParseError("short read (take %d)" % length)
        chunk = self.data[self.pos : self.pos + length]
        self.pos += length
        return chunk

    def utf8(self) -> str:
        return self.take(self.u16()).decode("utf-8", errors="replace")

    def varint(self) -> int:
        multiplier = 1
        value = 0
        for _ in range(4):
            byte = self.u8()
            value += (byte & 0x7F) * multiplier
            if not byte & 0x80:
                return value
            multiplier *= 128
        raise _ParseError("varint too long")


class MosquittoTarget(ProtocolTarget):
    """The MQTT broker target."""

    NAME = "mosquitto"
    PROTOCOL = "MQTT"
    PORT = 1883

    @classmethod
    def config_sources(cls):
        return mqtt_config.config_sources()

    @classmethod
    def entity_overrides(cls):
        return dict(mqtt_config.ENTITY_OVERRIDES)

    @classmethod
    def default_config(cls) -> Dict[str, Any]:
        return dict(mqtt_config.DEFAULT_CONFIG)

    # -- startup ---------------------------------------------------------

    def _startup_impl(self) -> None:
        cov = self.cov
        cov.hit("startup.enter")
        self._validate_config()
        self._init_listeners()
        self._init_security()
        self._init_persistence()
        self._init_bridge()
        self._init_limits()
        cov.hit("startup.complete")

    def _validate_config(self) -> None:
        cov = self.cov
        if int(self.cfg("max_qos")) not in (0, 1, 2):
            cov.hit("startup.bad_max_qos")
            raise StartupError("max_qos must be 0, 1 or 2", ("max_qos",))
        if self.enabled("require_certificate") and not self.enabled("tls_enabled"):
            cov.hit("startup.conflict.require_cert_no_tls")
            raise StartupError(
                "require_certificate needs tls_enabled",
                ("require_certificate", "tls_enabled"),
            )
        if self.cfg("psk_hint") and self.enabled("require_certificate"):
            cov.hit("startup.conflict.psk_with_cert")
            raise StartupError(
                "PSK and certificate auth are mutually exclusive",
                ("psk_hint", "require_certificate"),
            )
        if not self.enabled("allow_anonymous") and not self.cfg("password_file"):
            cov.hit("startup.conflict.anon_off_no_auth")
            raise StartupError(
                "allow_anonymous false requires password_file",
                ("allow_anonymous", "password_file"),
            )
        if self.enabled("use_identity_as_username") and not self.enabled("tls_enabled"):
            cov.hit("startup.conflict.identity_no_tls")
            raise StartupError(
                "use_identity_as_username needs TLS",
                ("use_identity_as_username", "tls_enabled"),
            )
        cov.hit("startup.config_valid")

    def _init_listeners(self) -> None:
        cov = self.cov
        port = int(self.cfg("port"))
        if cov.branch("startup.port_privileged", port < 1024):
            cov.hit("startup.port_privileged_warn")
        cov.hit("startup.listener_tcp")
        if cov.branch("startup.ws", self.enabled("listener_ws")):
            cov.hit("startup.ws.http_upgrade_init")
            cov.hit("startup.ws.frame_handler_init")
        if cov.branch("startup.tls", self.enabled("tls_enabled")):
            cov.hit("startup.tls.ctx_init")
            version = str(self.cfg("tls_version"))
            if version == "tlsv1.3":
                cov.hit("startup.tls.v13")
            else:
                cov.hit("startup.tls.v12")
            if cov.branch("startup.tls.mutual", self.enabled("require_certificate")):
                cov.hit("startup.tls.verify_peer")
                if self.enabled("use_identity_as_username"):
                    cov.hit("startup.tls.identity_username")
            if cov.branch("startup.tls.psk", bool(self.cfg("psk_hint"))):
                cov.hit("startup.tls.psk_ciphers")
                if self.enabled("listener_ws"):
                    # WSS with PSK: a rarely exercised combination.
                    cov.hit("startup.tls.psk_over_ws")

    def _init_security(self) -> None:
        cov = self.cov
        if cov.branch("startup.auth", not self.enabled("allow_anonymous")):
            cov.hit("startup.auth.password_file_load")
            cov.hit("startup.auth.hash_ready")
            if self.enabled("tls_enabled"):
                cov.hit("startup.auth.tls_and_passwords")
        elif self.cfg("password_file"):
            cov.hit("startup.auth.optional_passwords")

    def _init_persistence(self) -> None:
        cov = self.cov
        if cov.branch("startup.persistence", self.enabled("persistence")):
            cov.hit("startup.persistence.db_open")
            interval = int(self.cfg("autosave_interval"))
            if cov.branch("startup.persistence.autosave", interval > 0):
                cov.hit("startup.persistence.timer_armed")
                if interval < 60:
                    cov.hit("startup.persistence.autosave_aggressive")
            else:
                cov.hit("startup.persistence.save_on_exit_only")
            if self.enabled("retain_available"):
                cov.hit("startup.persistence.retained_restore")
            if self.enabled("queue_qos0_messages"):
                cov.hit("startup.persistence.qos0_journal")

    def _init_bridge(self) -> None:
        cov = self.cov
        if cov.branch("startup.bridge", self.enabled("bridge_enabled")):
            cov.hit("startup.bridge.connection_init")
            version = str(self.cfg("bridge_protocol_version"))
            if version == "mqttv50":
                cov.hit("startup.bridge.v5_properties")
            elif version == "mqttv31":
                cov.hit("startup.bridge.v31_legacy")
            else:
                cov.hit("startup.bridge.v311")
            if cov.branch("startup.bridge.cleansession", self.enabled("bridge_cleansession")):
                cov.hit("startup.bridge.state_discard")
            elif self.enabled("persistence"):
                cov.hit("startup.bridge.state_persist")
            if self.enabled("tls_enabled"):
                cov.hit("startup.bridge.tls_uplink")

    def _init_limits(self) -> None:
        cov = self.cov
        if cov.branch("startup.limits.conn_capped", int(self.cfg("max_connections")) > 0):
            cov.hit("startup.limits.conn_table")
        else:
            cov.hit("startup.limits.conn_unbounded")
        if int(self.cfg("message_size_limit")) > 0:
            cov.hit("startup.limits.message_size")
        if int(self.cfg("max_inflight_messages")) == 0:
            cov.hit("startup.limits.inflight_unbounded")
        if cov.branch("startup.limits.topic_alias",
                      int(self.cfg("max_topic_alias")) > 0):
            cov.hit("startup.limits.alias_table")
        else:
            cov.hit("startup.limits.alias_disabled")
        if cov.branch("startup.limits.queue_qos0", self.enabled("queue_qos0_messages")):
            cov.hit("startup.limits.qos0_queue_init")
            if int(self.cfg("max_queued_messages")) == 0:
                cov.hit("startup.limits.qos0_unbounded")
                cov.hit("startup.limits.qos0_unbounded_warning")
        log_type = str(self.cfg("log_type"))
        cov.hit("startup.log." + (log_type if log_type in
                                  ("error", "warning", "notice", "all") else "other"))
        if int(self.cfg("sys_interval")) > 0:
            cov.hit("startup.sys_topics")
        # Process-lifetime state: survives session resets, cleared only by
        # a broker restart.
        self._retained: Dict[str, bytes] = {}
        self._queued_qos0 = 0
        self._leaked_bytes = 0

    # -- session ---------------------------------------------------------

    def reset_session(self) -> None:
        self._connected = False
        self._protocol_level = 0
        self._client_id = ""
        self._subscriptions: Dict[str, int] = {}
        self._inflight_qos2: Dict[int, str] = {}
        self._released_mids: set = set()
        self._connections = 0
        self._topic_aliases: Dict[int, str] = {}

    # -- packet handling ----------------------------------------------------

    def handle_packet(self, data: bytes) -> bytes:
        """Parse one MQTT control packet; returns the broker's reply."""
        self.require_started()
        cov = self.cov
        try:
            return self._dispatch(data)
        except _ParseError:
            cov.hit("packet.malformed")
            return b""

    def _dispatch(self, data: bytes) -> bytes:
        cov = self.cov
        reader = _Reader(data)
        first = reader.u8()
        ptype = first >> 4
        flags = first & 0x0F
        length = reader.varint()
        if cov.branch("packet.length_mismatch", length != reader.remaining()):
            # Tolerate trailing garbage but record truncation.
            if length > reader.remaining():
                raise _ParseError("truncated body")
        body = _Reader(reader.take(min(length, reader.remaining())))
        log_type = str(self.cfg("log_type"))
        if log_type == "all":
            # Debug logging walks a formatting path per packet type.
            cov.hit("log.packet.%d" % ptype)
        elif log_type == "notice" and ptype in (CONNECT, DISCONNECT):
            cov.hit("log.connection_event")
        if ptype == CONNECT:
            return self._handle_connect(body, flags)
        if not self._connected and ptype not in (PINGREQ, DISCONNECT):
            cov.hit("packet.before_connect")
            return b""
        if ptype == PUBLISH:
            return self._handle_publish(body, flags)
        if ptype == PUBREL:
            return self._handle_pubrel(body, flags)
        if ptype in (PUBACK, PUBREC, PUBCOMP):
            cov.hit("packet.ack.%d" % ptype)
            body.u16()
            return b""
        if ptype == SUBSCRIBE:
            return self._handle_subscribe(body, flags)
        if ptype == UNSUBSCRIBE:
            return self._handle_unsubscribe(body, flags)
        if ptype == PINGREQ:
            cov.hit("packet.pingreq")
            return bytes([PINGRESP << 4, 0])
        if ptype == DISCONNECT:
            cov.hit("packet.disconnect")
            self._connected = False
            return b""
        if ptype == AUTH:
            if cov.branch("packet.auth.v5_only", self._protocol_level == 5):
                cov.hit("packet.auth.extended")
            return b""
        cov.hit("packet.unknown_type")
        raise _ParseError("reserved packet type %d" % ptype)

    # -- CONNECT ------------------------------------------------------------

    def _handle_connect(self, body: _Reader, flags: int) -> bytes:
        cov = self.cov
        cov.hit("connect.enter")
        self._connections += 1
        max_connections = int(self.cfg("max_connections"))
        if max_connections == 0:
            # Bug #4 (Table II): SEGV in loop_accepted. With
            # max_connections forced to 0 the accept loop dereferences an
            # unallocated connection-table slot.
            cov.hit("connect.accept_table_null")
            raise SanitizerFault(
                FaultKind.SEGV,
                "loop_accepted",
                "connection table unallocated with max_connections=0",
            )
        if cov.branch("connect.over_capacity", self._connections > max_connections):
            return self._connack(0x03)
        name = body.utf8()
        level = body.u8()
        if cov.branch("connect.bad_magic", name not in ("MQTT", "MQIsdp")):
            return self._connack(0x01)
        if level not in _PROTOCOL_LEVELS:
            cov.hit("connect.bad_level")
            return self._connack(0x01)
        cov.hit("connect.level.%d" % level)
        self._protocol_level = level
        connect_flags = body.u8()
        clean = bool(connect_flags & 0x02)
        will = bool(connect_flags & 0x04)
        will_qos = (connect_flags >> 3) & 0x03
        will_retain = bool(connect_flags & 0x20)
        has_password = bool(connect_flags & 0x40)
        has_username = bool(connect_flags & 0x80)
        if cov.branch("connect.reserved_flag", bool(connect_flags & 0x01)):
            raise _ParseError("reserved CONNECT flag set")
        keepalive = body.u16()
        if cov.branch("connect.keepalive_zero", keepalive == 0):
            cov.hit("connect.keepalive_disabled")
        elif keepalive > int(self.cfg("max_keepalive")):
            cov.hit("connect.keepalive_capped")
        if cov.branch("connect.v5_properties", level == 5):
            self._parse_v5_properties(body, context="connect")
        client_id = body.utf8()
        if cov.branch("connect.empty_client_id", not client_id):
            if not clean:
                cov.hit("connect.empty_id_rejected")
                return self._connack(0x02)
            cov.hit("connect.assigned_id")
            client_id = "auto-%d" % self._connections
        self._client_id = client_id
        if cov.branch("connect.will", will):
            if level == 5:
                self._parse_v5_properties(body, context="will")
            will_topic = body.utf8()
            will_payload = body.take(body.u16())
            cov.hit("connect.will.qos%d" % min(will_qos, 3))
            if will_qos == 3:
                cov.hit("connect.will.bad_qos")
                raise _ParseError("will QoS 3")
            if will_qos > int(self.cfg("max_qos")):
                cov.hit("connect.will.qos_over_max")
            if will_retain:
                if cov.branch("connect.will.retain_available",
                              self.enabled("retain_available")):
                    cov.hit("connect.will.retained_stored")
                else:
                    return self._connack(0x9A if level == 5 else 0x02)
            if self.enabled("persistence") and will_payload:
                cov.hit("connect.will.persisted")
        username = ""
        if cov.branch("connect.username", has_username):
            username = body.utf8()
        if cov.branch("connect.password", has_password):
            body.take(body.u16())
        if not self.enabled("allow_anonymous"):
            cov.hit("connect.auth_required")
            if not has_username:
                cov.hit("connect.auth_missing")
                return self._connack(0x05)
            if cov.branch("connect.auth_check", bool(username)):
                cov.hit("connect.auth_lookup")
        elif has_username:
            cov.hit("connect.optional_auth")
        if self.enabled("bridge_enabled") and client_id.startswith("bridge-"):
            cov.hit("connect.bridge_peer")
            if str(self.cfg("bridge_protocol_version")) == "mqttv50" and level != 5:
                cov.hit("connect.bridge_version_mismatch")
        self._connected = True
        cov.hit("connect.accepted")
        return self._connack(0x00)

    def _connack(self, code: int) -> bytes:
        self.cov.hit("connack.code.%d" % code)
        return bytes([CONNACK << 4, 2, 0, code])

    def _parse_v5_properties(self, body: _Reader, context: str) -> Dict[str, int]:
        cov = self.cov
        collected: Dict[str, int] = {}
        length = body.varint()
        if length > body.remaining():
            cov.hit("v5.props.overlong")
            if length > 0x4000:
                # Bug #3 (Table II): heap-use-after-free in
                # mqtt_packet_destroy. A multi-byte v5 property length far
                # beyond the packet makes the error path free the packet,
                # then the cleanup handler destroys it again.
                raise SanitizerFault(
                    FaultKind.HEAP_USE_AFTER_FREE,
                    "mqtt_packet_destroy",
                    "double destroy on oversized %s property block" % context,
                )
            raise _ParseError("property block exceeds packet")
        end = body.pos + length
        while body.pos < end:
            prop = body.u8()
            cov.hit("v5.prop.%d" % prop if prop in _KNOWN_PROPS else "v5.prop.unknown")
            if prop in (0x01, 0x17, 0x19, 0x24, 0x25, 0x28, 0x29, 0x2A):
                body.u8()
            elif prop in (0x13, 0x21, 0x22, 0x23):
                value = body.u16()
                if prop == 0x23:
                    collected["topic_alias"] = value
            elif prop in (0x02, 0x11, 0x18, 0x27):
                body.u32()
            elif prop in (0x0B,):
                body.varint()
            elif prop in (0x03, 0x08, 0x12, 0x15, 0x1A, 0x1C, 0x1F, 0x09, 0x16):
                body.take(body.u16())
            elif prop == 0x26:
                body.take(body.u16())
                body.take(body.u16())
            else:
                raise _ParseError("unknown property %d" % prop)
        return collected

    # -- PUBLISH ------------------------------------------------------------

    def _handle_publish(self, body: _Reader, flags: int) -> bytes:
        cov = self.cov
        cov.hit("publish.enter")
        dup = bool(flags & 0x08)
        qos = (flags >> 1) & 0x03
        retain = bool(flags & 0x01)
        if cov.branch("publish.bad_qos", qos == 3):
            raise _ParseError("PUBLISH QoS 3")
        topic = body.utf8()
        if cov.branch("publish.wildcard_topic", "#" in topic or "+" in topic):
            return b""
        mid = 0
        if cov.branch("publish.has_mid", qos > 0):
            mid = body.u16()
            if mid == 0:
                cov.hit("publish.zero_mid")
                raise _ParseError("mid 0 with QoS > 0")
        properties: Dict[str, int] = {}
        if self._protocol_level == 5:
            properties = self._parse_v5_properties(body, context="publish")
        if cov.branch("publish.has_alias", "topic_alias" in properties):
            topic = self._resolve_topic_alias(properties["topic_alias"], topic)
        if cov.branch("publish.empty_topic", not topic):
            raise _ParseError("empty topic")
        if topic.startswith("$SYS/"):
            cov.hit("publish.sys_topic_rejected")
            return b""
        payload = body.take(body.remaining())
        size_limit = int(self.cfg("message_size_limit"))
        if cov.branch("publish.size_limited", size_limit > 0):
            if len(payload) > size_limit:
                cov.hit("publish.oversize_dropped")
                return b""
        max_qos = int(self.cfg("max_qos"))
        if cov.branch("publish.qos_over_max", qos > max_qos):
            cov.hit("publish.qos_downgraded")
            qos = max_qos
        if cov.branch("publish.retain", retain):
            if self.enabled("retain_available"):
                if cov.branch("publish.retain_delete", not payload):
                    self._retained.pop(topic, None)
                else:
                    self._retained[topic] = payload
                    if self.enabled("persistence"):
                        cov.hit("publish.retain_persisted")
            else:
                cov.hit("publish.retain_unavailable")
                return b""
        if self.enabled("bridge_enabled") and not topic.startswith("local/"):
            cov.hit("publish.bridge_forward")
            if self.enabled("bridge_cleansession"):
                cov.hit("publish.bridge_forward_volatile")
        if qos == 0:
            cov.hit("publish.qos0")
            if self.enabled("queue_qos0_messages"):
                self._queued_qos0 += 1
                limit = int(self.cfg("max_queued_messages"))
                leaked = 0
                if cov.branch("publish.qos0_unbounded", limit == 0):
                    # Unbounded queue: every queued message leaks its
                    # queue node, struct and payload copy.
                    leaked = 1024 + len(payload)
                elif self._queued_qos0 > limit:
                    cov.hit("publish.qos0_queue_full")
                    # Queue-full drop path frees the payload but leaks
                    # the message struct and topic copy.
                    leaked = 256 + len(topic)
                if leaked:
                    # Bug #5 (Table II): memory leaks across multiple
                    # functions, gated on queue_qos0_messages.
                    self._leaked_bytes += leaked
                    if self._leaked_bytes > _LEAK_THRESHOLD:
                        raise SanitizerFault(
                            FaultKind.MEMORY_LEAK,
                            "multiple functions",
                            "QoS0 queue leaked %d bytes" % self._leaked_bytes,
                        )
            return b""
        if qos == 1:
            cov.hit("publish.qos1")
            return bytes([PUBACK << 4, 2]) + mid.to_bytes(2, "big")
        cov.hit("publish.qos2")
        if cov.branch("publish.qos2_dup_replay",
                      dup and mid in self._released_mids):
            if self.enabled("persistence"):
                # Bug #1 (Table II): heap-use-after-free in
                # Connection::newMessage. A duplicate QoS 2 publish whose
                # message id was already released reuses the freed message
                # store record when persistence re-indexes it.
                raise SanitizerFault(
                    FaultKind.HEAP_USE_AFTER_FREE,
                    "Connection::newMessage",
                    "dup QoS2 mid %d reuses freed store record" % mid,
                )
            cov.hit("publish.qos2_dup_ignored")
            return b""
        inflight_limit = int(self.cfg("max_inflight_messages"))
        if cov.branch(
            "publish.inflight_full",
            inflight_limit > 0 and len(self._inflight_qos2) >= inflight_limit,
        ):
            return b""
        self._inflight_qos2[mid] = topic
        return bytes([PUBREC << 4, 2]) + mid.to_bytes(2, "big")

    def _resolve_topic_alias(self, alias: int, topic: str) -> str:
        """MQTT v5 topic alias registration / resolution."""
        cov = self.cov
        maximum = int(self.cfg("max_topic_alias"))
        if cov.branch("alias.out_of_range",
                      alias == 0 or maximum == 0 or alias > maximum):
            raise _ParseError("topic alias %d outside [1, %d]" % (alias, maximum))
        if cov.branch("alias.register", bool(topic)):
            self._topic_aliases[alias] = topic
            return topic
        if cov.branch("alias.known", alias in self._topic_aliases):
            return self._topic_aliases[alias]
        cov.hit("alias.unknown")
        raise _ParseError("unresolved topic alias %d" % alias)

    def _handle_pubrel(self, body: _Reader, flags: int) -> bytes:
        cov = self.cov
        cov.hit("pubrel.enter")
        if cov.branch("pubrel.bad_flags", flags != 0x02):
            raise _ParseError("PUBREL flags must be 0010")
        mid = body.u16()
        if cov.branch("pubrel.known_mid", mid in self._inflight_qos2):
            del self._inflight_qos2[mid]
            self._released_mids.add(mid)
            if self.enabled("persistence"):
                cov.hit("pubrel.store_released")
        else:
            cov.hit("pubrel.unknown_mid")
        return bytes([PUBCOMP << 4, 2]) + mid.to_bytes(2, "big")

    # -- SUBSCRIBE / UNSUBSCRIBE ------------------------------------------

    def _handle_subscribe(self, body: _Reader, flags: int) -> bytes:
        cov = self.cov
        cov.hit("subscribe.enter")
        if cov.branch("subscribe.bad_flags", flags != 0x02):
            raise _ParseError("SUBSCRIBE flags must be 0010")
        mid = body.u16()
        if self._protocol_level == 5:
            self._parse_v5_properties(body, context="subscribe")
        codes: List[int] = []
        while body.remaining() > 0:
            topic_filter = body.utf8()
            options = body.u8()
            qos = options & 0x03
            if not self._valid_filter(topic_filter):
                cov.hit("subscribe.invalid_filter")
                codes.append(0x80)
                continue
            if cov.branch("subscribe.shared", topic_filter.startswith("$share/")):
                if self._protocol_level != 5:
                    codes.append(0x80)
                    continue
            if topic_filter.startswith("$SYS/"):
                cov.hit("subscribe.sys_topic")
                if int(self.cfg("sys_interval")) == 0:
                    codes.append(0x80)
                    continue
            if cov.branch("subscribe.qos_capped", qos > int(self.cfg("max_qos"))):
                qos = int(self.cfg("max_qos"))
            self._subscriptions[topic_filter] = qos
            codes.append(qos)
            if cov.branch("subscribe.retained_replay",
                          self.enabled("retain_available") and bool(self._retained)):
                cov.hit("subscribe.retained_delivery")
        if cov.branch("subscribe.no_filters", not codes):
            raise _ParseError("SUBSCRIBE without filters")
        payload = bytes(codes)
        header = bytes([SUBACK << 4])
        return header + bytes([2 + len(payload)]) + mid.to_bytes(2, "big") + payload

    def _handle_unsubscribe(self, body: _Reader, flags: int) -> bytes:
        cov = self.cov
        cov.hit("unsubscribe.enter")
        if cov.branch("unsubscribe.bad_flags", flags != 0x02):
            raise _ParseError("UNSUBSCRIBE flags must be 0010")
        mid = body.u16()
        if self._protocol_level == 5:
            self._parse_v5_properties(body, context="unsubscribe")
        while body.remaining() > 0:
            topic_filter = body.utf8()
            if self.enabled("bridge_enabled") and topic_filter.startswith("$SYS/broker/bridge"):
                if cov.branch("unsubscribe.bridge_addrs",
                              topic_filter not in self._subscriptions):
                    # Bug #2 (Table II): heap-use-after-free in
                    # neu_node_manager_get_addrs_all. Unsubscribing a
                    # bridge address topic that was never subscribed walks
                    # the freed bridge address list.
                    raise SanitizerFault(
                        FaultKind.HEAP_USE_AFTER_FREE,
                        "neu_node_manager_get_addrs_all",
                        "bridge address list walked after free",
                    )
            if cov.branch("unsubscribe.known", topic_filter in self._subscriptions):
                del self._subscriptions[topic_filter]
            else:
                cov.hit("unsubscribe.unknown")
        return bytes([UNSUBACK << 4, 2]) + mid.to_bytes(2, "big")

    def _valid_filter(self, topic_filter: str) -> bool:
        cov = self.cov
        if not topic_filter:
            return False
        levels = topic_filter.split("/")
        for index, level in enumerate(levels):
            if "#" in level:
                if cov.branch("filter.hash_misplaced",
                              level != "#" or index != len(levels) - 1):
                    return False
            if "+" in level and level != "+":
                cov.hit("filter.plus_mixed")
                return False
        return True


_KNOWN_PROPS = frozenset(
    (0x01, 0x02, 0x03, 0x08, 0x09, 0x0B, 0x11, 0x12, 0x13, 0x15, 0x16,
     0x17, 0x18, 0x19, 0x1A, 0x1C, 0x1F, 0x21, 0x22, 0x23, 0x24, 0x25,
     0x26, 0x27, 0x28, 0x29, 0x2A)
)
