"""The Mosquitto-style configuration surface.

``CONFIG_FILE`` mirrors the flat ``key value`` format of
``mosquitto.conf``; the extraction pipeline consumes it verbatim. The
commented alternatives become candidate values for enum inference.
"""

from repro.core.entity import Flag
from repro.core.extraction import ConfigSources

CONFIG_FILE = """\
# mosquitto.conf - broker configuration
port 1883
max_connections 100
max_keepalive 65535
max_qos 2
max_inflight_messages 20
max_topic_alias 10
max_queued_messages 1000
message_size_limit 0
queue_qos0_messages false
retain_available true
allow_anonymous true
password_file
persistence false
persistence_location /var/lib/mosquitto/
autosave_interval 1800
sys_interval 10
bridge_enabled false
bridge_protocol_version mqttv311
bridge_protocol_version mqttv31
bridge_protocol_version mqttv50
bridge_cleansession false
listener_ws false
tls_enabled false
tls_version tlsv1.2
tls_version tlsv1.3
require_certificate false
use_identity_as_username false
psk_hint
cafile /etc/mosquitto/ca.crt
certfile /etc/mosquitto/server.crt
keyfile /etc/mosquitto/server.key
log_type error
log_type warning
log_type notice
log_type all
"""

#: Hand overrides where inference needs domain knowledge.
ENTITY_OVERRIDES = {
    # max_qos is the QoS ceiling: only 0/1/2 are meaningful.
    "max_qos": {"values": (2, 1, 0)},
    # password_file/psk_hint carry path-ish semantics but the *presence*
    # of a value changes the auth code path, so they stay mutable with an
    # unset/set value pair.
    "password_file": {"values": ("", "/etc/mosquitto/passwd"), "flag": Flag.MUTABLE},
    "psk_hint": {"values": ("", "broker-hint"), "flag": Flag.MUTABLE},
}


def config_sources() -> ConfigSources:
    return ConfigSources(files=(("mosquitto.conf", CONFIG_FILE),))


DEFAULT_CONFIG = {
    "port": 1883,
    "max_connections": 100,
    "max_keepalive": 65535,
    "max_qos": 2,
    "max_inflight_messages": 20,
    "max_topic_alias": 10,
    "max_queued_messages": 1000,
    "message_size_limit": 0,
    "queue_qos0_messages": False,
    "retain_available": True,
    "allow_anonymous": True,
    "password_file": "",
    "persistence": False,
    "persistence_location": "/var/lib/mosquitto/",
    "autosave_interval": 1800,
    "sys_interval": 10,
    "bridge_enabled": False,
    "bridge_protocol_version": "mqttv311",
    "bridge_cleansession": False,
    "listener_ws": False,
    "tls_enabled": False,
    "tls_version": "tlsv1.2",
    "require_certificate": False,
    "use_identity_as_username": False,
    "psk_hint": "",
    "cafile": "/etc/mosquitto/ca.crt",
    "certfile": "/etc/mosquitto/server.crt",
    "keyfile": "/etc/mosquitto/server.key",
    "log_type": "error",
}
