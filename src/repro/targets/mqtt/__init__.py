"""Mosquitto-style MQTT broker target."""

from repro.targets.mqtt.server import MosquittoTarget

__all__ = ["MosquittoTarget"]
