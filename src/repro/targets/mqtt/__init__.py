"""Mosquitto-style MQTT broker target."""

from repro.pits.mqtt import state_model
from repro.targets.mqtt.server import MosquittoTarget
from repro.targets.registry import load_manifest, register_target

MANIFEST = load_manifest(__file__)
register_target(MANIFEST.name, MosquittoTarget, state_model, MANIFEST)

__all__ = ["MANIFEST", "MosquittoTarget"]
