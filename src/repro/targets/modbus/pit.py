"""Pit for the Modbus target: MBAP-framed register-protocol requests."""

from repro.fuzzing.datamodel import Blob, DataModel, Number
from repro.fuzzing.statemodel import Action, State, StateModel


def _frame(name: str, function: int, pdu: bytes, unit: int = 1,
           protocol: int = 0) -> DataModel:
    return DataModel(
        name,
        [
            Number("transaction", bits=16, default=0x0001),
            Number("protocol", bits=16, default=protocol),
            Number("length", bits=16, default=len(pdu) + 2),
            Number("unit", bits=8, default=unit),
            Number("function", bits=8, default=function),
            Blob("pdu", default=pdu),
        ],
    )


def _span(address: int, quantity: int) -> bytes:
    return address.to_bytes(2, "big") + quantity.to_bytes(2, "big")


def state_model() -> StateModel:
    """The Modbus request state model shared by all fuzzers."""
    write_words = b"\x00\x2a\x01\x00"
    data_models = [
        _frame("ReadCoils", 0x01, _span(0, 16)),
        _frame("ReadCoilsHigh", 0x01, _span(48, 8)),
        _frame("ReadHolding", 0x03, _span(0, 8)),
        _frame("ReadHoldingSpan", 0x03, _span(100, 20)),
        _frame("WriteSingle", 0x06, _span(5, 0x2A)),
        _frame("WriteMultiple", 0x10,
               _span(10, 2) + bytes([len(write_words)]) + write_words),
        _frame("DiagEcho", 0x08, _span(0, 0xBEEF)),
        _frame("DiagRestart", 0x08, _span(1, 0xFF00)),
        _frame("DiagCounters", 0x08, _span(0x0B, 0)),
        _frame("WrongProto", 0x03, _span(0, 4), protocol=0x1234),
        _frame("Broadcast", 0x06, _span(3, 7), unit=0),
        # A header torn mid-MBAP: exercises the runt-frame path.
        DataModel("Runt", [Blob("fragment", default=b"\x00\x01\x00\x00\x00")]),
    ]
    states = [
        State("start")
        .add_transition("survey", 3.0)
        .add_transition("operate", 2.0)
        .add_transition("maintain", 1.0)
        .add_transition("stray", 1.0)
        .add_transition("noise", 0.5),
        State("survey", [Action("send", "ReadCoils"),
                         Action("send", "ReadHolding"),
                         Action("send", "ReadHoldingSpan")])
        .add_transition("operate", 1.0)
        .add_transition("finish", 2.0),
        State("operate", [Action("send", "WriteSingle"),
                          Action("send", "WriteMultiple"),
                          Action("send", "ReadCoilsHigh")])
        .add_transition("maintain", 1.0)
        .add_transition("finish", 2.0),
        State("maintain", [Action("send", "DiagEcho"),
                           Action("send", "DiagCounters"),
                           Action("send", "DiagRestart")])
        .add_transition("finish", 1.0),
        State("stray", [Action("send", "WrongProto"),
                        Action("send", "Broadcast")])
        .add_transition("finish", 1.0),
        State("noise", [Action("send", "Runt")])
        .add_transition("finish", 1.0),
        State("finish"),
    ]
    return StateModel("modbus-session", "start", states, data_models)
