"""The Modbus gateway configuration surface: flat ``key value`` format.

``modbus.conf`` mirrors the register-map configuration of industrial
Modbus/TCP gateways (unit addressing, register file sizing, write
protection, diagnostics) — the protocol handlers below gate on these.
"""

from repro.core.entity import Flag
from repro.core.extraction import ConfigSources

CONFIG_FILE = """\
# modbus.conf - gateway configuration
port 502
unit_id 1
accept_any_unit false
register_count 128
coil_count 64
allow_writes true
readonly_holding false
strict_length true
diagnostics false
broadcast_enabled false
exception_verbose false
max_pdu 253
word_order big
word_order little
watchdog_interval 0
trace_frames false
"""

ENTITY_OVERRIDES = {
    # The register file is sized at startup; only a few sizes matter.
    "register_count": {"values": (128, 16, 2048), "flag": Flag.MUTABLE},
    "coil_count": {"values": (64, 8), "flag": Flag.MUTABLE},
    "unit_id": {"values": (1, 17, 247), "flag": Flag.MUTABLE},
}


def config_sources() -> ConfigSources:
    return ConfigSources(files=(("modbus.conf", CONFIG_FILE),))


DEFAULT_CONFIG = {
    "port": 502,
    "unit_id": 1,
    "accept_any_unit": False,
    "register_count": 128,
    "coil_count": 64,
    "allow_writes": True,
    "readonly_holding": False,
    "strict_length": True,
    "diagnostics": False,
    "broadcast_enabled": False,
    "exception_verbose": False,
    "max_pdu": 253,
    "word_order": "big",
    "watchdog_interval": 0,
    "trace_frames": False,
}
