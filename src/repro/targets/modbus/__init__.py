"""Modbus/TCP register-protocol gateway target."""

from repro.targets.modbus.pit import state_model
from repro.targets.modbus.server import ModbusTarget
from repro.targets.registry import load_manifest, register_target

MANIFEST = load_manifest(__file__)
register_target(MANIFEST.name, ModbusTarget, state_model, MANIFEST)

__all__ = ["MANIFEST", "ModbusTarget"]
