"""A Modbus/TCP-style register-protocol gateway target.

Parses MBAP-framed requests (transaction/protocol/length header + unit
id) and the classic register function codes — read coils (0x01), read
holding registers (0x03), write single register (0x06), write multiple
registers (0x10), diagnostics (0x08). Unit addressing, write
protection, frame-length trust and diagnostics are all
configuration-gated, and four injected bugs hide behind non-default
configurations.
"""

from __future__ import annotations

from typing import Any, Dict, List

from repro.errors import StartupError
from repro.targets.base import ProtocolTarget
from repro.targets.faults import FaultKind, SanitizerFault
from repro.targets.modbus import config as mb_config

FC_READ_COILS = 0x01
FC_READ_HOLDING = 0x03
FC_WRITE_SINGLE = 0x06
FC_DIAGNOSTICS = 0x08
FC_WRITE_MULTIPLE = 0x10

_EX_ILLEGAL_FUNCTION = 0x01
_EX_ILLEGAL_ADDRESS = 0x02
_EX_ILLEGAL_VALUE = 0x03

_DIAG_ECHO = 0x00
_DIAG_RESTART = 0x01
_DIAG_COUNTERS = 0x0B


class _Drop(Exception):
    """Frame is not for us (wrong protocol id / unit); silently dropped."""


class ModbusTarget(ProtocolTarget):
    """The Modbus register-protocol target."""

    NAME = "modbus"
    PROTOCOL = "Modbus"
    PORT = 502

    @classmethod
    def config_sources(cls):
        return mb_config.config_sources()

    @classmethod
    def entity_overrides(cls):
        return dict(mb_config.ENTITY_OVERRIDES)

    @classmethod
    def default_config(cls) -> Dict[str, Any]:
        return dict(mb_config.DEFAULT_CONFIG)

    # -- startup ---------------------------------------------------------

    def _startup_impl(self) -> None:
        cov = self.cov
        cov.hit("startup.enter")
        unit = int(self.cfg("unit_id"))
        if not 1 <= unit <= 247:
            cov.hit("startup.conflict.unit_range")
            raise StartupError("unit_id %d outside 1..247 (0 is broadcast)"
                               % unit, ("unit_id",))
        registers = int(self.cfg("register_count"))
        if not 0 < registers <= 65536:
            cov.hit("startup.conflict.register_count")
            raise StartupError("register_count out of range",
                               ("register_count",))
        if int(self.cfg("max_pdu")) > 253:
            cov.hit("startup.conflict.pdu_limit")
            raise StartupError("max_pdu exceeds the 253-byte spec limit",
                               ("max_pdu",))
        if str(self.cfg("word_order")) not in ("big", "little"):
            cov.hit("startup.conflict.word_order")
            raise StartupError("word_order must be big or little",
                               ("word_order",))
        if cov.branch("startup.large_map", registers > 1000):
            cov.hit("startup.large_map_alloc")
        if cov.branch("startup.diagnostics", self.enabled("diagnostics")):
            cov.hit("startup.diag_counters_alloc")
        if cov.branch("startup.broadcast", self.enabled("broadcast_enabled")):
            cov.hit("startup.broadcast_listener")
        if cov.branch("startup.trace", self.enabled("trace_frames")):
            cov.hit("startup.trace_ring_alloc")
        if cov.branch("startup.watchdog",
                      int(self.cfg("watchdog_interval")) > 0):
            cov.hit("startup.watchdog_armed")
        if cov.branch("startup.readonly", self.enabled("readonly_holding")):
            cov.hit("startup.write_protect")
        if str(self.cfg("word_order")) == "little":
            cov.hit("startup.word_swap_tables")
        if self.enabled("accept_any_unit"):
            cov.hit("startup.promiscuous_unit")
        # Server-lifetime state: the register/coil files survive sessions.
        self._registers: List[int] = [0] * registers
        self._coils: List[bool] = [False] * int(self.cfg("coil_count"))
        self._restarting = False
        cov.hit("startup.complete")

    # -- session ---------------------------------------------------------

    def reset_session(self) -> None:
        self._restarting = False

    # -- parsing ---------------------------------------------------------

    def handle_packet(self, data: bytes) -> bytes:
        self.require_started()
        try:
            return self._dispatch(data)
        except _Drop:
            return b""

    def _dispatch(self, data: bytes) -> bytes:
        cov = self.cov
        if cov.branch("frame.runt", len(data) < 8):
            cov.hit("frame.malformed")
            raise _Drop("short frame")
        protocol = int.from_bytes(data[2:4], "big")
        if cov.branch("frame.wrong_protocol", protocol != 0):
            raise _Drop("not modbus")
        declared = int.from_bytes(data[4:6], "big")
        actual = len(data) - 6
        if cov.branch("frame.length_mismatch", declared != actual):
            if self.enabled("strict_length"):
                cov.hit("frame.length_rejected")
                raise _Drop("length mismatch")
            if declared > actual and data[7] == FC_WRITE_MULTIPLE:
                # Bug #1: with strict length checks off the declared MBAP
                # length is trusted, and the write-multiple staging copy
                # reads that many bytes past the received frame.
                raise SanitizerFault(
                    FaultKind.HEAP_BUFFER_OVERFLOW,
                    "mb_frame_read",
                    "declared %d-byte PDU in %d-byte frame"
                    % (declared, actual),
                )
            cov.hit("frame.length_trusted")
        unit = data[6]
        broadcast = False
        if cov.branch("frame.broadcast", unit == 0):
            if not self.enabled("broadcast_enabled"):
                raise _Drop("broadcast disabled")
            cov.hit("frame.broadcast_accepted")
            broadcast = True
        elif unit != int(self.cfg("unit_id")):
            if not cov.branch("frame.promiscuous",
                              self.enabled("accept_any_unit")):
                cov.hit("frame.unit_ignored")
                raise _Drop("not our unit")
        if cov.branch("frame.pdu_cap", actual - 1 > int(self.cfg("max_pdu"))):
            return self._exception(data, data[7] if len(data) > 7 else 0,
                                   _EX_ILLEGAL_VALUE)
        if self.enabled("trace_frames"):
            cov.hit("frame.traced")
            if self._restarting:
                # Bug #2: a restart-communications diagnostic frees the
                # trace ring; the very next traced frame flushes into it.
                raise SanitizerFault(
                    FaultKind.HEAP_USE_AFTER_FREE,
                    "mb_trace_flush",
                    "trace ring used after restart-communications free",
                )
        function = data[7]
        pdu = data[8:]
        if function == FC_READ_COILS:
            reply = self._read_coils(data, pdu)
        elif function == FC_READ_HOLDING:
            reply = self._read_holding(data, pdu)
        elif function == FC_WRITE_SINGLE:
            reply = self._write_single(data, pdu)
        elif function == FC_WRITE_MULTIPLE:
            reply = self._write_multiple(data, pdu)
        elif function == FC_DIAGNOSTICS:
            reply = self._diagnostics(data, pdu)
        else:
            cov.hit("pdu.unknown_function")
            reply = self._exception(data, function, _EX_ILLEGAL_FUNCTION)
        if cov.branch("frame.broadcast_mute", broadcast):
            failed = len(reply) > 7 and reply[7] & 0x80
            if function in (FC_WRITE_SINGLE, FC_WRITE_MULTIPLE) and failed:
                # Bug #3: a failing broadcast write queues its exception
                # response on the error queue, but broadcast replies are
                # muted so the queue is never drained.
                raise SanitizerFault(
                    FaultKind.MEMORY_LEAK,
                    "mb_queue_response",
                    "broadcast write exception queued but never drained",
                )
            return b""
        return reply

    # -- function codes --------------------------------------------------

    def _read_span(self, data: bytes, pdu: bytes, function: int, limit: int):
        cov = self.cov
        if cov.branch("read.short_pdu", len(pdu) < 4):
            return self._exception(data, function, _EX_ILLEGAL_VALUE)
        address = int.from_bytes(pdu[0:2], "big")
        quantity = int.from_bytes(pdu[2:4], "big")
        if cov.branch("read.bad_quantity", quantity == 0 or quantity > 125):
            return self._exception(data, function, _EX_ILLEGAL_VALUE)
        if cov.branch("read.bad_span", address + quantity > limit):
            if self.enabled("exception_verbose"):
                cov.hit("read.span_logged")
            return self._exception(data, function, _EX_ILLEGAL_ADDRESS)
        return (address, quantity)

    def _read_coils(self, data: bytes, pdu: bytes) -> bytes:
        cov = self.cov
        cov.hit("coils.read")
        span = self._read_span(data, pdu, FC_READ_COILS, len(self._coils))
        if isinstance(span, bytes):
            return span
        address, quantity = span
        byte_count = (quantity + 7) // 8
        bits = bytearray(byte_count)
        for offset in range(quantity):
            if self._coils[address + offset]:
                bits[offset // 8] |= 1 << (offset % 8)
        if any(bits):
            cov.hit("coils.nonzero_read")
        return self._reply(data, bytes([FC_READ_COILS, byte_count]) + bytes(bits))

    def _read_holding(self, data: bytes, pdu: bytes) -> bytes:
        cov = self.cov
        cov.hit("holding.read")
        span = self._read_span(data, pdu, FC_READ_HOLDING, len(self._registers))
        if isinstance(span, bytes):
            return span
        address, quantity = span
        out = bytearray()
        little = str(self.cfg("word_order")) == "little"
        for offset in range(quantity):
            word = self._registers[address + offset] & 0xFFFF
            if cov.branch("holding.word_swap", little):
                word = ((word & 0xFF) << 8) | (word >> 8)
            out += word.to_bytes(2, "big")
        if any(out):
            cov.hit("holding.nonzero_read")
        return self._reply(data, bytes([FC_READ_HOLDING, len(out)]) + bytes(out))

    def _write_guard(self, data: bytes, function: int):
        cov = self.cov
        if not cov.branch("write.allowed", self.enabled("allow_writes")):
            cov.hit("write.rejected")
            return self._exception(data, function, _EX_ILLEGAL_FUNCTION)
        return None

    def _write_single(self, data: bytes, pdu: bytes) -> bytes:
        cov = self.cov
        cov.hit("write.single")
        rejected = self._write_guard(data, FC_WRITE_SINGLE)
        if rejected is not None:
            return rejected
        if cov.branch("write.single_short", len(pdu) < 4):
            return self._exception(data, FC_WRITE_SINGLE, _EX_ILLEGAL_VALUE)
        address = int.from_bytes(pdu[0:2], "big")
        value = int.from_bytes(pdu[2:4], "big")
        if cov.branch("write.single_bad_address",
                      address >= len(self._registers)):
            return self._exception(data, FC_WRITE_SINGLE, _EX_ILLEGAL_ADDRESS)
        if cov.branch("write.readonly_holding",
                      self.enabled("readonly_holding")):
            cov.hit("write.protected_reject")
            return self._exception(data, FC_WRITE_SINGLE, _EX_ILLEGAL_FUNCTION)
        self._registers[address] = value
        if value:
            cov.hit("write.nonzero_value")
        return self._reply(data, bytes([FC_WRITE_SINGLE]) + pdu[0:4])

    def _write_multiple(self, data: bytes, pdu: bytes) -> bytes:
        cov = self.cov
        cov.hit("write.multiple")
        rejected = self._write_guard(data, FC_WRITE_MULTIPLE)
        if rejected is not None:
            return rejected
        if cov.branch("write.multi_short", len(pdu) < 5):
            return self._exception(data, FC_WRITE_MULTIPLE, _EX_ILLEGAL_VALUE)
        address = int.from_bytes(pdu[0:2], "big")
        quantity = int.from_bytes(pdu[2:4], "big")
        byte_count = pdu[4]
        if cov.branch("write.multi_bad_quantity",
                      quantity == 0 or quantity > 123):
            return self._exception(data, FC_WRITE_MULTIPLE, _EX_ILLEGAL_VALUE)
        if self.enabled("readonly_holding"):
            cov.hit("write.multi_protected")
            if byte_count == 0:
                # Bug #4: the write-protect path frees the staging buffer
                # before the zero-byte-count check, which then memcpy's
                # from the dangling pointer.
                raise SanitizerFault(
                    FaultKind.SEGV,
                    "mb_write_multiple",
                    "zero byte-count memcpy from freed staging buffer",
                )
            return self._exception(data, FC_WRITE_MULTIPLE,
                                   _EX_ILLEGAL_FUNCTION)
        if cov.branch("write.multi_count_mismatch",
                      byte_count != quantity * 2 or len(pdu) < 5 + byte_count):
            return self._exception(data, FC_WRITE_MULTIPLE, _EX_ILLEGAL_VALUE)
        if cov.branch("write.multi_bad_span",
                      address + quantity > len(self._registers)):
            return self._exception(data, FC_WRITE_MULTIPLE,
                                   _EX_ILLEGAL_ADDRESS)
        for offset in range(quantity):
            word = int.from_bytes(pdu[5 + 2 * offset:7 + 2 * offset], "big")
            self._registers[address + offset] = word
        cov.hit("write.multi_committed")
        return self._reply(data, bytes([FC_WRITE_MULTIPLE]) + pdu[0:4])

    def _diagnostics(self, data: bytes, pdu: bytes) -> bytes:
        cov = self.cov
        if not cov.branch("diag.enabled", self.enabled("diagnostics")):
            return self._exception(data, FC_DIAGNOSTICS, _EX_ILLEGAL_FUNCTION)
        if cov.branch("diag.short_pdu", len(pdu) < 2):
            return self._exception(data, FC_DIAGNOSTICS, _EX_ILLEGAL_VALUE)
        sub = int.from_bytes(pdu[0:2], "big")
        if cov.branch("diag.echo", sub == _DIAG_ECHO):
            return self._reply(data, bytes([FC_DIAGNOSTICS]) + pdu)
        if cov.branch("diag.restart", sub == _DIAG_RESTART):
            self._restarting = True
            if self.enabled("watchdog_interval"):
                cov.hit("diag.restart_watchdog_kick")
            return self._reply(data, bytes([FC_DIAGNOSTICS]) + pdu[0:2])
        if cov.branch("diag.counters", sub == _DIAG_COUNTERS):
            if self.enabled("exception_verbose"):
                cov.hit("diag.counters_verbose")
            return self._reply(data,
                               bytes([FC_DIAGNOSTICS]) + pdu[0:2] + b"\x00\x2a")
        cov.hit("diag.unknown_subfunction")
        return self._exception(data, FC_DIAGNOSTICS, _EX_ILLEGAL_VALUE)

    # -- replies ---------------------------------------------------------

    def _reply(self, request: bytes, pdu: bytes) -> bytes:
        self.cov.hit("reply.ok")
        header = request[0:4] + (len(pdu) + 1).to_bytes(2, "big") + request[6:7]
        return header + pdu

    def _exception(self, request: bytes, function: int, code: int) -> bytes:
        self.cov.hit("reply.exception.%d" % code)
        header = request[0:4] + (3).to_bytes(2, "big") + request[6:7]
        return header + bytes([(function | 0x80) & 0xFF, code])
