"""Deterministic chaos injection for protocol targets.

The paper's evaluation assumes targets that fail cleanly and restart
instantly; real IoT SUTs flake at startup, hang mid-session, garble
responses and die silently. :class:`ChaosTarget` wraps any
:class:`~repro.targets.base.ProtocolTarget` behind a policy-driven,
*seeded* fault proxy so campaigns can be stress-tested under realistic
target misbehaviour without giving up reproducibility: the same
``(policy, seed, instance)`` triple produces the same fault schedule on
every run and on every worker count.

Failure modes (all rates are per-event probabilities in ``[0, 1]``):

- **transient startup failure** — ``startup()`` raises
  :class:`~repro.errors.StartupError`; a later retry may succeed.
- **startup hang** — ``startup()`` raises :class:`~repro.errors.TargetHang`.
- **packet hang** — ``handle_packet()`` raises ``TargetHang`` (the send
  timed out); the session survives.
- **garbled response** — the real response is replaced with random bytes.
- **spurious session reset** — the target silently drops its session
  state and swallows the packet.
- **silent death** — the target stops responding entirely (no error, no
  coverage) until the supervisor's watchdog notices and restarts it.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, fields
from typing import Any, Callable, Optional

from repro.errors import StartupError, TargetHang
from repro.targets.base import ProtocolTarget


@dataclass(frozen=True)
class ChaosPolicy:
    """Per-event fault probabilities for one chaos proxy."""

    startup_failure_rate: float = 0.0
    startup_hang_rate: float = 0.0
    packet_hang_rate: float = 0.0
    garble_rate: float = 0.0
    session_reset_rate: float = 0.0
    silent_death_rate: float = 0.0

    def __post_init__(self):
        for spec in fields(self):
            value = getattr(self, spec.name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(
                    "%s must be within [0, 1], got %r" % (spec.name, value)
                )

    @property
    def enabled(self) -> bool:
        """True when any fault can actually fire."""
        return any(getattr(self, spec.name) > 0.0 for spec in fields(self))

    @classmethod
    def from_level(cls, level: float) -> "ChaosPolicy":
        """Scale the canonical fault mix by one ``--chaos-level`` knob.

        ``level=0`` disables everything; ``level=1`` is hostile but still
        survivable: startup flakes dominate (they exercise the backoff /
        quarantine path), hangs and silent deaths stay rare enough that
        the watchdog keeps the campaign moving.
        """
        if not 0.0 <= level <= 1.0:
            raise ValueError("chaos level must be within [0, 1], got %r" % level)
        return cls(
            startup_failure_rate=0.5 * level,
            startup_hang_rate=0.1 * level,
            packet_hang_rate=0.02 * level,
            garble_rate=0.15 * level,
            session_reset_rate=0.05 * level,
            silent_death_rate=0.004 * level,
        )


class ChaosInjector:
    """The persistent, seeded decision stream behind one instance's proxy.

    Lives *outside* the :class:`ChaosTarget` wrapper so the fault
    schedule advances across target restarts instead of replaying the
    same prefix after every reboot.
    """

    def __init__(self, policy: ChaosPolicy, seed: int, instance: int):
        self.policy = policy
        # Mix the chaos seed with the instance index arithmetically
        # (hash() is randomized per interpreter) for independent streams.
        self.rng = random.Random(seed * 1_000_003 + instance * 7_919 + 17)
        self.instance = instance
        self.startup_failures = 0
        self.startup_hangs = 0
        self.packet_hangs = 0
        self.garbles = 0
        self.session_resets = 0
        self.silent_deaths = 0

    def _fire(self, rate: float) -> bool:
        return rate > 0.0 and self.rng.random() < rate

    def on_startup(self) -> None:
        """Roll the startup faults; raises when one fires."""
        if self._fire(self.policy.startup_hang_rate):
            self.startup_hangs += 1
            raise TargetHang("chaos: target hung during startup")
        if self._fire(self.policy.startup_failure_rate):
            self.startup_failures += 1
            raise StartupError("chaos: transient startup failure")

    def on_packet(self) -> str:
        """Roll the per-packet faults; returns the action to apply."""
        if self._fire(self.policy.packet_hang_rate):
            self.packet_hangs += 1
            return "hang"
        if self._fire(self.policy.silent_death_rate):
            self.silent_deaths += 1
            return "die"
        if self._fire(self.policy.session_reset_rate):
            self.session_resets += 1
            return "reset"
        if self._fire(self.policy.garble_rate):
            self.garbles += 1
            return "garble"
        return "pass"

    def garble(self, response: Optional[bytes]) -> bytes:
        """Replace a response with deterministic garbage of similar size."""
        length = max(1, len(response) if response else 4)
        return bytes(self.rng.randrange(256) for _ in range(length))


class ChaosTarget:
    """A fault-injecting proxy around a live :class:`ProtocolTarget`.

    Transparent to the engine and the instance: unknown attributes
    delegate to the wrapped target, so ``config``, ``started``, ``cov``
    and the class constants all read through. Only the lifecycle entry
    points are intercepted.
    """

    def __init__(self, inner: ProtocolTarget, injector: ChaosInjector):
        # Bypass __setattr__-style surprises: plain attributes only.
        self.inner = inner
        self.injector = injector
        self.silently_dead = False

    # -- intercepted lifecycle ------------------------------------------------

    def startup(self, assignment=None) -> None:
        self.injector.on_startup()
        self.inner.startup(assignment)
        self.silently_dead = False

    def handle_packet(self, data: bytes) -> Optional[bytes]:
        if self.silently_dead:
            return None
        action = self.injector.on_packet()
        if action == "hang":
            raise TargetHang("chaos: send timed out")
        if action == "die":
            self.silently_dead = True
            return None
        if action == "reset":
            self.inner.reset_session()
            return None
        response = self.inner.handle_packet(data)
        if action == "garble":
            return self.injector.garble(response)
        return response

    def reset_session(self) -> None:
        self.inner.reset_session()

    # -- delegation -----------------------------------------------------------

    def __getattr__(self, name: str) -> Any:
        return getattr(self.inner, name)

    def __repr__(self) -> str:
        return "ChaosTarget(%r)" % (self.inner,)


class ChaosWrapper:
    """Picklable per-instance target wrapper the campaign installs.

    Owns one persistent :class:`ChaosInjector` (exposed as
    ``.injector`` for tests and stats surfaces), so every restart wraps
    the fresh target in a proxy that *continues* the instance's fault
    schedule deterministically — including across checkpoint/resume,
    which pickles the wrapper with the rest of the loop state.
    """

    def __init__(self, policy: ChaosPolicy, seed: int, instance: int):
        self.injector = ChaosInjector(policy, seed, instance)

    def __call__(self, target: ProtocolTarget) -> ChaosTarget:
        return ChaosTarget(target, self.injector)


def chaos_wrapper(
    policy: ChaosPolicy, seed: int, instance: int
) -> Callable[[ProtocolTarget], ChaosTarget]:
    """Build the per-instance target wrapper for ``instance``."""
    return ChaosWrapper(policy, seed, instance)
