"""Seeded property-generated target family."""

from repro.targets.randtarget.gen import (
    DEFAULT_SEED,
    RandTarget,
    build_state_model,
    make_random_target,
    register_family_member,
    state_model,
)
from repro.targets.registry import load_manifest, register_target

MANIFEST = load_manifest(__file__)
register_target(MANIFEST.name, RandTarget, state_model, MANIFEST)

__all__ = [
    "DEFAULT_SEED",
    "MANIFEST",
    "RandTarget",
    "build_state_model",
    "make_random_target",
    "register_family_member",
    "state_model",
]
