"""A seeded, property-generated target family.

``make_random_target(seed)`` derives a complete protocol target — opcode
table, configuration surface, coverage sites and injected-bug triggers —
from a single integer seed. All randomness happens at *generation* time
(``random.Random(seed)``); the generated target itself is fully
deterministic, so campaigns over family members reproduce byte-for-byte
like any hand-written target.

Generated classes are anchored in this module's globals under a
deterministic qualified name (``RandTarget_<seed>``) so they pickle by
reference across worker processes and checkpoints. ``state_model``
factories are :func:`functools.partial` applications of the module-level
:func:`build_state_model`, which pickle the same way.
"""

from __future__ import annotations

import functools
import random
from typing import Any, Dict, Tuple

from repro.core.entity import Flag
from repro.core.extraction import ConfigSources
from repro.errors import StartupError
from repro.fuzzing.datamodel import Blob, DataModel, Number
from repro.fuzzing.statemodel import Action, State, StateModel
from repro.targets.base import ProtocolTarget
from repro.targets.faults import FaultKind, SanitizerFault

DEFAULT_SEED = 77

#: Fixed vocabularies — site names are always drawn from these pools, so
#: the coverage site space of every family member stays bounded.
_FEATURE_POOL = ("checksums", "compat_shim", "fast_scan", "deep_recurse",
                 "mirror_mode", "legacy_frames", "batch_mode", "telemetry")
_OP_POOL = ("ping", "query", "store", "fetch", "walk", "batch",
            "reset", "stat", "echo", "probe")
_BEHAVIOR_POOL = ("echo", "sum", "store", "fetch")


def generate_spec(seed: int) -> Dict[str, Any]:
    """Derive the full target specification for ``seed`` (pure function)."""
    rng = random.Random(seed)
    magic = rng.randrange(1, 255)
    features = tuple(sorted(rng.sample(_FEATURE_POOL, rng.randint(4, 6))))
    count = rng.randint(5, 8)
    codes = rng.sample(range(1, 240), count)
    names = rng.sample(_OP_POOL, count)
    ops: Dict[int, Tuple[str, str]] = {}
    for index, (code, name) in enumerate(zip(codes, names)):
        if index == 0:
            behavior = "scan"
        elif index == 1:
            behavior = "recurse"
        else:
            behavior = rng.choice(_BEHAVIOR_POOL)
        ops[code] = (name, behavior)
    ghost = rng.choice([c for c in range(1, 240) if c not in ops])
    spec = {
        "seed": seed,
        "magic": magic,
        "ops": ops,
        "features": features,
        "scan_window": rng.choice((32, 48, 64)),
        "max_depth": rng.choice((4, 6, 8)),
        # Bug gates: each fixed bug hides behind one seed-chosen feature.
        "ghost_opcode": ghost,
        "dispatch_feature": rng.choice(features),
        "dispatch_byte": rng.randrange(0, 256),
        "scan_feature": rng.choice(features),
        "recurse_feature": rng.choice(features),
        "port": 9000 + seed % 1000,
    }
    return spec


def _config_file(spec: Dict[str, Any]) -> str:
    lines = ["# randtarget.conf - generated surface (seed %d)" % spec["seed"],
             "port %d" % spec["port"],
             "strict_mode false",
             "paranoia 0",
             "scan_window %d" % spec["scan_window"],
             "max_depth %d" % spec["max_depth"]]
    lines += ["%s false" % feature for feature in spec["features"]]
    return "\n".join(lines) + "\n"


def _default_config(spec: Dict[str, Any]) -> Dict[str, Any]:
    config = {
        "port": spec["port"],
        "strict_mode": False,
        "paranoia": 0,
        "scan_window": spec["scan_window"],
        "max_depth": spec["max_depth"],
    }
    for feature in spec["features"]:
        config[feature] = False
    return config


def config_key_count(seed: int) -> int:
    """Number of configuration keys a family member exposes."""
    return len(_default_config(generate_spec(seed)))


class _RandTargetBase(ProtocolTarget):
    """Shared machinery; concrete members carry a ``SPEC`` class attr."""

    SPEC: Dict[str, Any] = {}

    @classmethod
    def config_sources(cls) -> ConfigSources:
        return ConfigSources(
            files=(("randtarget.conf", _config_file(cls.SPEC)),))

    @classmethod
    def entity_overrides(cls):
        spec = cls.SPEC
        return {
            "scan_window": {"values": (spec["scan_window"], 16),
                            "flag": Flag.MUTABLE},
            "max_depth": {"values": (spec["max_depth"], 2),
                          "flag": Flag.MUTABLE},
        }

    @classmethod
    def default_config(cls) -> Dict[str, Any]:
        return _default_config(cls.SPEC)

    # -- lifecycle -------------------------------------------------------

    def _startup_impl(self) -> None:
        cov = self.cov
        cov.hit("startup.enter")
        if self.enabled("strict_mode") and int(self.cfg("paranoia")) < 1:
            cov.hit("startup.conflict.strict_mode")
            raise StartupError("strict_mode requires paranoia >= 1",
                               ("strict_mode", "paranoia"))
        if int(self.cfg("scan_window")) <= 0:
            cov.hit("startup.conflict.scan_window")
            raise StartupError("scan_window must be positive",
                               ("scan_window",))
        if int(self.cfg("max_depth")) <= 0:
            cov.hit("startup.conflict.max_depth")
            raise StartupError("max_depth must be positive", ("max_depth",))
        for feature in self.SPEC["features"]:
            if cov.branch("startup.%s" % feature, self.enabled(feature)):
                cov.hit("startup.%s_armed" % feature)
        if cov.branch("startup.paranoid", int(self.cfg("paranoia")) > 0):
            cov.hit("startup.paranoia_checks")
        self._store: Dict[int, bytes] = {}
        cov.hit("startup.complete")

    def reset_session(self) -> None:
        pass

    # -- protocol --------------------------------------------------------

    def handle_packet(self, data: bytes) -> bytes:
        self.require_started()
        cov = self.cov
        spec = self.SPEC
        if cov.branch("frame.short", len(data) < 3):
            cov.hit("frame.malformed")
            return b"\xff\x01"
        if cov.branch("frame.bad_magic", data[0] != spec["magic"]):
            cov.hit("frame.malformed")
            return b"\xff\x02"
        opcode, declared = data[1], data[2]
        payload = data[3:]
        if cov.branch("frame.length_mismatch", declared != len(payload)):
            if not self.enabled("legacy_frames") or "legacy_frames" not in spec["features"]:
                cov.hit("frame.malformed")
                return b"\xff\x03"
            cov.hit("frame.legacy_length")
        entry = spec["ops"].get(opcode)
        if entry is None:
            return self._unknown(opcode, payload)
        name, behavior = entry
        cov.hit("op.%s" % name)
        return getattr(self, "_op_" + behavior)(name, payload)

    def _unknown(self, opcode: int, payload: bytes) -> bytes:
        cov = self.cov
        spec = self.SPEC
        cov.hit("op.unknown")
        if cov.branch("op.ghost_slot", opcode == spec["ghost_opcode"]):
            if (self.enabled(spec["dispatch_feature"]) and payload
                    and payload[0] == spec["dispatch_byte"]):
                # Bug #1: the ghost opcode's handler was removed but its
                # jump-table slot survives; dispatching through it jumps
                # to a stale pointer.
                raise SanitizerFault(
                    FaultKind.SEGV,
                    "rt_dispatch",
                    "stale jump-table slot for opcode 0x%02x" % opcode,
                )
            cov.hit("op.ghost_probe")
        return b"\xff\x04"

    # -- behaviors -------------------------------------------------------

    def _op_echo(self, name: str, payload: bytes) -> bytes:
        if payload:
            self.cov.hit("op.%s.nonempty" % name)
        return b"\x00" + payload[:64]

    def _op_sum(self, name: str, payload: bytes) -> bytes:
        total = sum(payload) & 0xFFFF
        if self.cov.branch("op.%s.overflow16" % name, sum(payload) > 0xFFFF):
            self.cov.hit("op.%s.wrapped" % name)
        return b"\x00" + total.to_bytes(2, "big")

    def _op_store(self, name: str, payload: bytes) -> bytes:
        cov = self.cov
        if cov.branch("op.%s.empty" % name, len(payload) < 2):
            return b"\xff\x05"
        self._store[payload[0]] = payload[1:17]
        if cov.branch("op.%s.full" % name, len(self._store) > 32):
            self._store.clear()
            cov.hit("op.%s.evicted" % name)
        return b"\x00\x01"

    def _op_fetch(self, name: str, payload: bytes) -> bytes:
        cov = self.cov
        if cov.branch("op.%s.empty" % name, not payload):
            return b"\xff\x05"
        value = self._store.get(payload[0])
        if cov.branch("op.%s.miss" % name, value is None):
            return b"\x00\x00"
        return b"\x00" + value

    def _op_scan(self, name: str, payload: bytes) -> bytes:
        cov = self.cov
        spec = self.SPEC
        window = int(self.cfg("scan_window"))
        if cov.branch("op.%s.window_exceeded" % name, len(payload) > window):
            if self.enabled(spec["scan_feature"]):
                # Bug #2: the vectorised fast-scan path rounds the scan
                # length up to the window size and reads past the buffer.
                raise SanitizerFault(
                    FaultKind.HEAP_BUFFER_OVERFLOW,
                    "rt_scan_window",
                    "%d-byte scan over a %d-byte window"
                    % (len(payload), window),
                )
            cov.hit("op.%s.window_clamped" % name)
            payload = payload[:window]
        matches = payload.count(b"\x00")
        if matches:
            cov.hit("op.%s.matched" % name)
        return b"\x00" + bytes([min(matches, 255)])

    def _op_recurse(self, name: str, payload: bytes) -> bytes:
        cov = self.cov
        spec = self.SPEC
        depth = payload[0] if payload else 0
        limit = int(self.cfg("max_depth"))
        if cov.branch("op.%s.deep" % name, depth > limit):
            if self.enabled(spec["recurse_feature"]) and depth > limit * 8:
                # Bug #3: the depth clamp is skipped on the optimised
                # path, and each level pushes a frame-local buffer.
                raise SanitizerFault(
                    FaultKind.STACK_BUFFER_OVERFLOW,
                    "rt_recurse",
                    "recursion depth %d over limit %d" % (depth, limit),
                )
            cov.hit("op.%s.clamped" % name)
            depth = limit
        if cov.branch("op.%s.leaf" % name, depth == 0):
            return b"\x00\x00"
        return b"\x00" + bytes([depth])


def make_random_target(seed: int = DEFAULT_SEED):
    """Build (or return the cached) target class for ``seed``."""
    qualname = "RandTarget_%d" % seed
    existing = globals().get(qualname)
    if existing is not None:
        return existing
    spec = generate_spec(seed)
    cls = type(qualname, (_RandTargetBase,), {
        "NAME": "randtarget" if seed == DEFAULT_SEED else "randtarget_%d" % seed,
        "PROTOCOL": "GEN",
        "PORT": spec["port"],
        "SPEC": spec,
        "__doc__": "Generated protocol target (seed %d)." % seed,
    })
    cls.__module__ = __name__
    cls.__qualname__ = qualname
    globals()[qualname] = cls
    return cls


def build_state_model(seed: int) -> StateModel:
    """Pit for the family member at ``seed`` — one message per opcode."""
    spec = generate_spec(seed)
    magic = spec["magic"]
    data_models = []
    op_names = []
    for code, (name, behavior) in sorted(spec["ops"].items()):
        if behavior == "scan":
            payload = b"\x00scan\x00me\x00"
        elif behavior == "recurse":
            payload = bytes([max(spec["max_depth"] - 1, 1)])
        elif behavior == "store":
            payload = b"\x07stored-value"
        elif behavior == "fetch":
            payload = b"\x07"
        elif behavior == "sum":
            payload = b"\x10\x20\x30\x40"
        else:
            payload = b"hello-generated-world"
        model_name = "Op" + name.capitalize()
        op_names.append(model_name)
        data_models.append(DataModel(model_name, [
            Number("magic", bits=8, default=magic),
            Number("opcode", bits=8, default=code),
            Number("length", bits=8, default=len(payload)),
            Blob("payload", default=payload),
        ]))
    data_models.append(DataModel("Runt", [
        Blob("fragment", default=bytes([magic])),
    ]))
    # Split the opcode messages over two mid states for path diversity.
    half = (len(op_names) + 1) // 2
    states = [
        State("start")
        .add_transition("front", 3.0)
        .add_transition("back", 2.0)
        .add_transition("noise", 0.5),
        State("front", [Action("send", n) for n in op_names[:half]])
        .add_transition("back", 1.0)
        .add_transition("finish", 2.0),
        State("back", [Action("send", n) for n in op_names[half:]])
        .add_transition("finish", 1.0),
        State("noise", [Action("send", "Runt")])
        .add_transition("finish", 1.0),
        State("finish"),
    ]
    return StateModel("randtarget-%d-session" % seed, "start", states,
                      data_models)


def state_model() -> StateModel:
    """The default family member's pit (seed ``DEFAULT_SEED``)."""
    return build_state_model(DEFAULT_SEED)


def register_family_member(seed: int, *, replace: bool = False) -> str:
    """Generate and register the family member for ``seed``.

    Returns the registered target name. The default seed maps to the
    in-tree ``randtarget`` entry; other seeds get ``randtarget_<seed>``.
    """
    from repro.targets.registry import register_target

    cls = make_random_target(seed)
    spec = cls.SPEC
    manifest = {
        "name": cls.NAME,
        "protocol": "GEN",
        "description": "Property-generated protocol target (seed %d): "
                       "%d opcodes, %d feature gates." % (
                           seed, len(spec["ops"]), len(spec["features"])),
        "port": spec["port"],
        "config_surface": {
            "format": "key-value file (randtarget.conf)",
            "keys": config_key_count(seed),
        },
        "pit": "repro.targets.randtarget.gen:build_state_model",
        "bugs": [
            {"id": 1, "kind": FaultKind.SEGV.value, "site": "rt_dispatch",
             "trigger": "stale jump-table slot dispatched with the "
                        "trigger byte under %s" % spec["dispatch_feature"]},
            {"id": 2, "kind": FaultKind.HEAP_BUFFER_OVERFLOW.value,
             "site": "rt_scan_window",
             "trigger": "scan longer than scan_window on the fast path "
                        "under %s" % spec["scan_feature"]},
            {"id": 3, "kind": FaultKind.STACK_BUFFER_OVERFLOW.value,
             "site": "rt_recurse",
             "trigger": "recursion depth 8x over max_depth under "
                        "%s" % spec["recurse_feature"]},
        ],
    }
    register_target(cls.NAME, cls, functools.partial(build_state_model, seed),
                    manifest, replace=replace)
    return cls.NAME


#: The default family member, generated at import time.
RandTarget = make_random_target(DEFAULT_SEED)
