"""In-process network namespace simulation.

The paper isolates each fuzzing instance in a Linux network namespace via
``ip netns`` to prevent cross-contamination. We reproduce the semantics in
process: each :class:`NetworkNamespace` owns a private port space; sockets
bound in one namespace are invisible from another; channels deliver
datagrams/streams only between endpoints of the same namespace.
"""

from repro.netns.namespace import NetworkNamespace, NamespaceManager
from repro.netns.channel import Channel, Endpoint

__all__ = ["Channel", "Endpoint", "NamespaceManager", "NetworkNamespace"]
