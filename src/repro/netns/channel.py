"""Channels and endpoints: the loopback data plane inside a namespace."""

from __future__ import annotations

from collections import deque
from typing import Deque, Optional

from repro.errors import NamespaceError


class Endpoint:
    """One side of a channel: a socket-like FIFO of datagrams."""

    def __init__(self, name: str):
        self.name = name
        self._inbox: Deque[bytes] = deque()
        self.closed = False

    def deliver(self, payload: bytes) -> None:
        if self.closed:
            raise NamespaceError("delivery to closed endpoint %r" % self.name)
        self._inbox.append(bytes(payload))

    def recv(self) -> Optional[bytes]:
        """Pop the next pending datagram, or ``None`` when idle."""
        if self._inbox:
            return self._inbox.popleft()
        return None

    def drain(self) -> list:
        """Pop *all* pending datagrams in FIFO order (maybe empty).

        The batched transport's primitive: one call replaces a
        ``recv``-until-``None`` loop, amortising the per-datagram deque
        probes into a single list build.
        """
        if not self._inbox:
            return []
        batch = list(self._inbox)
        self._inbox.clear()
        return batch

    def requeue(self, payloads) -> None:
        """Push datagrams back to the *front* of the inbox, preserving
        their order (undo for the unprocessed tail of a drained batch)."""
        self._inbox.extendleft(reversed(payloads))

    def pending(self) -> int:
        return len(self._inbox)

    def close(self) -> None:
        self.closed = True
        self._inbox.clear()

    def __repr__(self) -> str:
        return "Endpoint(%r, pending=%d%s)" % (
            self.name,
            len(self._inbox),
            ", closed" if self.closed else "",
        )


class Channel:
    """A bidirectional datagram channel between two endpoints.

    Models the fuzzer-to-target loopback link: the client side sends
    protocol packets, the server side sends responses. Both directions
    preserve ordering and never drop packets (isolation, not lossiness,
    is what the design needs).
    """

    def __init__(self, name: str):
        self.name = name
        self.client = Endpoint(name + ":client")
        self.server = Endpoint(name + ":server")
        #: Total payload bytes moved in each direction (stats surface).
        self.bytes_to_server = 0
        self.bytes_to_client = 0

    def send_to_server(self, payload: bytes) -> None:
        self.server.deliver(payload)
        self.bytes_to_server += len(payload)

    def send_many_to_server(self, payloads) -> None:
        """Deliver a burst of datagrams in order, counting bytes once."""
        total = 0
        deliver = self.server.deliver
        for payload in payloads:
            deliver(payload)
            total += len(payload)
        self.bytes_to_server += total

    def send_to_client(self, payload: bytes) -> None:
        self.client.deliver(payload)
        self.bytes_to_client += len(payload)

    def close(self) -> None:
        self.client.close()
        self.server.close()

    @property
    def closed(self) -> bool:
        return self.client.closed and self.server.closed

    def __repr__(self) -> str:
        return "Channel(%r)" % self.name
