"""Network namespaces with isolated port spaces."""

from __future__ import annotations

from typing import Dict, List

from repro.errors import NamespaceError
from repro.netns.channel import Channel


class NetworkNamespace:
    """A private network environment for one fuzzing instance.

    Ports bound here are invisible to every other namespace; connecting to
    a port only succeeds if something in *this* namespace bound it — the
    behaviour ``ip netns exec`` provides to the paper's instances.
    """

    def __init__(self, name: str):
        self.name = name
        self._bound: Dict[int, Channel] = {}
        self._channels: List[Channel] = []
        self.destroyed = False

    def bind(self, port: int) -> Channel:
        """Bind ``port`` and return the server-side channel."""
        self._check_alive()
        if not 0 < port < 65536:
            raise NamespaceError("invalid port %r" % port)
        if port in self._bound:
            raise NamespaceError(
                "port %d already bound in namespace %r" % (port, self.name)
            )
        channel = Channel("%s/%d" % (self.name, port))
        self._bound[port] = channel
        self._channels.append(channel)
        return channel

    def connect(self, port: int) -> Channel:
        """Connect to a bound port; fails if nothing listens here."""
        self._check_alive()
        channel = self._bound.get(port)
        if channel is None or channel.closed:
            raise NamespaceError(
                "connection refused: port %d in namespace %r" % (port, self.name)
            )
        return channel

    def release(self, port: int) -> None:
        """Unbind ``port``, closing its channel."""
        self._check_alive()
        channel = self._bound.pop(port, None)
        if channel is None:
            raise NamespaceError("port %d not bound in namespace %r" % (port, self.name))
        channel.close()

    def bound_ports(self) -> List[int]:
        return sorted(self._bound)

    def destroy(self) -> None:
        """Tear down the namespace, closing every channel."""
        for channel in self._channels:
            channel.close()
        self._bound.clear()
        self.destroyed = True

    def _check_alive(self) -> None:
        if self.destroyed:
            raise NamespaceError("namespace %r was destroyed" % self.name)

    def __repr__(self) -> str:
        return "NetworkNamespace(%r, ports=%s)" % (self.name, self.bound_ports())


class NamespaceManager:
    """Creates and tracks namespaces, one per parallel fuzzing instance."""

    def __init__(self):
        self._namespaces: Dict[str, NetworkNamespace] = {}

    def create(self, name: str) -> NetworkNamespace:
        if name in self._namespaces and not self._namespaces[name].destroyed:
            raise NamespaceError("namespace %r already exists" % name)
        namespace = NetworkNamespace(name)
        self._namespaces[name] = namespace
        return namespace

    def get(self, name: str) -> NetworkNamespace:
        try:
            return self._namespaces[name]
        except KeyError:
            raise NamespaceError("unknown namespace %r" % name)

    def destroy(self, name: str) -> None:
        self.get(name).destroy()

    def destroy_all(self) -> None:
        for namespace in self._namespaces.values():
            namespace.destroy()

    def active(self) -> List[str]:
        return sorted(
            name for name, ns in self._namespaces.items() if not ns.destroyed
        )

    def __len__(self) -> int:
        return len(self.active())
