"""The stable public facade over the CMFuzz reproduction pipeline.

Five entry points cover the whole workflow — each stage usable on its
own, every knob carried by a typed config dataclass instead of a kwargs
sprawl:

========================  ===================================================
:func:`extract_model`     configuration sources → :class:`ConfigurationModel`
:func:`quantify_relations` model → relation graph + quantification report
:func:`allocate_groups`   relation graph → per-instance entity groups
:func:`run_campaign`      one fuzzing campaign (by target/mode name)
:func:`compare_modes`     the full fuzzer comparison grid for one subject
========================  ===================================================

Model-build scheduling (probe workers, on-disk probe cache) lives in
:class:`ModelBuildConfig`; campaign scheduling reuses
:class:`~repro.harness.campaign.CampaignConfig`.

The historical positional signature
``run_campaign(target_cls, state_model, mode_obj, config)`` was removed
after its deprecation cycle; call it with a registry target name (and
optionally a live mode object) instead.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Optional, Sequence, Tuple, Union

from repro.core.allocation import AllocationResult, allocate
from repro.core.extraction import extract_entities
from repro.core.model import ConfigurationModel, RelationAwareModel
from repro.core.probes import build_probe_executor
from repro.core.relation import QuantificationReport, RelationQuantifier
from repro.harness.campaign import CampaignConfig, CampaignResult
from repro.harness.campaign import run_campaign as _run_campaign_live
from repro.telemetry import NULL_TELEMETRY

__all__ = [
    "ModelBuildConfig",
    "allocate_groups",
    "compare_modes",
    "extract_model",
    "quantify_relations",
    "run_campaign",
]

#: A target: its registry name ("mosquitto") or the target class itself.
TargetLike = Union[str, type]


@dataclass(frozen=True)
class ModelBuildConfig:
    """Knobs for the model-build pipeline (extraction → quantification).

    Attributes:
        max_combinations: Cap on value combinations probed per entity
            pair (the cartesian product is truncated deterministically).
        aggregate: ``"max"`` (paper: peak interaction effect) or
            ``"mean"`` (the A3 ablation).
        synergy: Score combinations by interaction excess rather than
            absolute startup coverage.
        workers: Worker processes for the probe fan-out; ``1`` probes
            serially in-process. Results are bit-identical either way.
        cache: Memoise probe outcomes in the content-addressed on-disk
            cache (``.cmfuzz-cache/probes/``); a warm cache rebuilds the
            model without launching the target once.
        cache_dir: Cache root override (default ``$CMFUZZ_CACHE_DIR`` or
            ``.cmfuzz-cache/``).
        probe_timeout: Per-probe wall-clock budget in seconds (pooled
            probing only).
        retries: Failed probe-batch retries in a fresh worker.
    """

    max_combinations: int = 36
    aggregate: str = "max"
    synergy: bool = True
    workers: int = 1
    cache: bool = False
    cache_dir: Optional[str] = None
    probe_timeout: Optional[float] = None
    retries: int = 1


def _resolve_target(target: TargetLike) -> Tuple[type, str]:
    """Accept a registry name or a target class; return ``(cls, name)``."""
    from repro.targets.registry import get_target

    if isinstance(target, str):
        return get_target(target).target_cls, target
    return target, target.NAME


def extract_model(target: TargetLike) -> ConfigurationModel:
    """Identify a target's configuration model (Algorithm 1, §III-A).

    Extracts configuration items from the target's CLI/file sources and
    lifts each into a 4-tuple entity.
    """
    target_cls, _ = _resolve_target(target)
    entities = extract_entities(
        target_cls.config_sources(), target_cls.entity_overrides()
    )
    return ConfigurationModel(entities)


def quantify_relations(
    target: TargetLike,
    model: Optional[ConfigurationModel] = None,
    config: Optional[ModelBuildConfig] = None,
    on_fault=None,
    telemetry=None,
) -> Tuple[RelationAwareModel, QuantificationReport]:
    """Quantify pairwise relations via startup probes (§III-B1).

    Args:
        target: Registry name or target class to probe.
        model: The configuration model; extracted from ``target`` when
            omitted.
        config: Probe scheduling and scoring knobs.
        on_fault: Callback receiving each
            :class:`~repro.targets.faults.SanitizerFault` a probe
            triggers (fired once per logical probe, identically whether
            outcomes were executed or served from the cache).
        telemetry: Optional :class:`repro.telemetry.Telemetry` for
            ``modelbuild.*`` counters and per-phase spans.

    Returns:
        The relation-aware model and the quantification report.

    Raises:
        CacheUnavailableError: When ``config.cache`` is enabled but the
            cache directory is unusable (pass ``cache=False`` to run
            without it).
    """
    cfg = config or ModelBuildConfig()
    target_cls, name = _resolve_target(target)
    if model is None:
        model = extract_model(target_cls)
    executor = build_probe_executor(
        name, workers=cfg.workers, cache=cfg.cache, cache_dir=cfg.cache_dir,
        timeout=cfg.probe_timeout, retries=cfg.retries, telemetry=telemetry,
    )
    quantifier = RelationQuantifier(
        max_combinations=cfg.max_combinations, aggregate=cfg.aggregate,
        synergy=cfg.synergy, executor=executor, on_fault=on_fault,
        telemetry=telemetry or NULL_TELEMETRY,
    )
    return quantifier.quantify(model)


def allocate_groups(
    relation_model: RelationAwareModel, n_instances: int = 4
) -> AllocationResult:
    """Group entities cohesively across instances (Algorithm 2, §III-B2)."""
    return allocate(relation_model, n_instances)


def run_campaign(
    target,
    mode="cmfuzz",
    config: Optional[CampaignConfig] = None,
    mode_kwargs: Optional[Dict[str, Any]] = None,
    cache: bool = False,
    cache_dir: Optional[str] = None,
) -> CampaignResult:
    """Run one fuzzing campaign.

    Registry names, typed config::

        result = run_campaign("mosquitto", mode="cmfuzz",
                              config=CampaignConfig(duration_hours=6.0))

    ``mode`` may also be a live :class:`~repro.parallel.base.ParallelMode`
    instance for custom modes. With ``cache=True`` (registry modes only)
    the campaign outcome is memoised on disk exactly like
    :func:`repro.harness.executor.execute_specs` — note cached results
    rebuild without live instance objects.
    """
    from repro.parallel.base import ParallelMode

    if not isinstance(target, str) and not isinstance(mode, (str, ParallelMode)):
        raise TypeError(
            "the legacy positional run_campaign(target_cls, state_model, "
            "mode, config) form was removed; call "
            "run_campaign('<target name>', mode='<mode name>', config=...) "
            "instead")

    target_cls, name = _resolve_target(target)
    if not isinstance(mode, str):
        if cache:
            raise ValueError(
                "cache=True requires a registry mode name (the cache key "
                "derives from it); got a live mode object")
        from repro.targets.registry import get_target

        return _run_campaign_live(target_cls, get_target(name).state_model(),
                                  mode, config)
    if cache:
        from repro.harness.executor import (
            CampaignSpec,
            execute_specs,
            results,
        )

        cells = execute_specs(
            [CampaignSpec(target=name, mode=mode,
                          mode_kwargs=dict(mode_kwargs or {}),
                          config=config or CampaignConfig())],
            cache=True, cache_dir=cache_dir,
        )
        return results(cells)[0]
    from repro.parallel import create_mode
    from repro.targets.registry import get_target

    return _run_campaign_live(
        target_cls, get_target(name).state_model(),
        create_mode(mode, **dict(mode_kwargs or {})), config,
    )


def compare_modes(
    target: TargetLike,
    modes: Sequence[str] = ("cmfuzz", "peach", "spfuzz"),
    repetitions: int = 1,
    config: Optional[CampaignConfig] = None,
    workers: int = 1,
    cache: bool = False,
    cache_dir: Optional[str] = None,
    mode_factories: Optional[Dict[str, Any]] = None,
    backend: Optional[str] = None,
    coordinator: Optional[str] = None,
):
    """Run every mode against one subject and return the comparison.

    The workhorse behind the paper's Table I / Table II / Figure 4
    protocols: ``repetitions`` campaigns per mode (seeds spaced like
    :func:`~repro.harness.campaign.run_repeated`), optionally fanned
    across ``workers`` processes and memoised on disk.

    Args:
        target: Registry name or target class.
        modes: Registry mode names (or keys into ``mode_factories``).
        repetitions: Campaigns per mode.
        config: Shared campaign configuration (seed schedule derives
            from its seed).
        workers: Campaign cells run in parallel; ``1`` is in-process and
            bit-identical.
        cache: Memoise campaign outcomes on disk.
        cache_dir: Cache root override.
        mode_factories: Optional ``{name: factory}`` for custom modes;
            those cells cannot cross a process boundary and run serially.
        backend: ``"local"`` (default) or ``"fleet"`` — dispatch the
            registry-mode cells through the :mod:`repro.fleet` control
            plane instead of the local pool. Both fold results in spec
            order, so the comparison is byte-identical either way.
        coordinator: Fleet backend only: a running coordinator URL;
            omitted, an ephemeral in-process fleet is used.

    Returns:
        :class:`repro.harness.experiments.SubjectComparison`.
    """
    from repro.harness.experiments import _run_fuzzers

    _, name = _resolve_target(target)
    return _run_fuzzers(
        name, tuple(modes), repetitions, config,
        mode_factories=mode_factories, workers=workers, cache=cache,
        cache_dir=cache_dir, backend=backend, coordinator=coordinator,
    )
