"""Exception hierarchy shared across the CMFuzz reproduction."""


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class ConfigModelError(ReproError):
    """Raised for malformed configuration sources or model construction failures."""


class ExtractionError(ConfigModelError):
    """Raised when a configuration source cannot be parsed into items."""


class AllocationError(ReproError):
    """Raised when the allocation algorithm receives invalid inputs."""


class StartupError(ReproError):
    """Raised by a target when a configuration combination prevents startup.

    Conflicting configuration pairs manifest as startup failures; the
    relation quantifier maps this to zero startup coverage (no edge).
    """

    def __init__(self, message, conflicting=()):
        super().__init__(message)
        self.conflicting = tuple(conflicting)


class TargetError(ReproError):
    """Raised for invalid use of a protocol target."""


class TargetHang(TargetError):
    """Raised when a target stops responding within the send timeout.

    Real SUTs hang on startup or mid-session; the harness observes this
    as a timed-out send. The chaos layer raises it deterministically and
    the supervisor's watchdog charges the timeout to simulated time.
    """


class FuzzingError(ReproError):
    """Raised for invalid data/state model or engine usage."""


class NamespaceError(ReproError):
    """Raised for network namespace misuse (port collisions, unknown peers)."""


class HarnessError(ReproError):
    """Raised for invalid campaign configuration."""


class CacheUnavailableError(HarnessError):
    """Raised when the on-disk cache directory cannot be created or written.

    Validated eagerly when a cache is constructed — before any campaign
    or probe work starts — so a bad ``CMFUZZ_CACHE_DIR`` fails with a
    clear message (and a ``--no-cache`` hint) instead of an opaque
    ``OSError`` mid-run.
    """


class CheckpointError(HarnessError):
    """Raised when a campaign checkpoint cannot be written or restored."""


class SchemaVersionError(ReproError):
    """Raised when a persisted artifact carries an incompatible schema.

    Covers both checkpoint manifests and export JSON: rather than
    mis-deserializing state written by an older (or newer) layout, the
    loader refuses with the found vs. supported version spelled out.
    """

    def __init__(self, artifact, found, supported):
        super().__init__(
            "%s carries schema_version %r but this build supports %r; "
            "regenerate it with the current code (or delete the stale "
            "artifact)" % (artifact, found, supported)
        )
        self.artifact = artifact
        self.found = found
        self.supported = supported


class CampaignInterrupted(HarnessError):
    """Raised when SIGTERM/SIGINT stops a checkpointing campaign.

    The final checkpoint has already been persisted when this is
    raised; re-running the same campaign with ``resume=True`` (CLI
    ``--resume``) continues from exactly the interrupted iteration.
    """

    def __init__(self, message, checkpoint_path=None, sim_time=0.0,
                 iterations=0):
        super().__init__(message)
        self.checkpoint_path = checkpoint_path
        self.sim_time = sim_time
        self.iterations = iterations
