"""Span tracing keyed to the simulated clock, with a JSONL sink.

Records are timestamped with *simulated* seconds (``ts``) so traces line
up with the campaign's coverage time axis; span ``duration`` is measured
in real (wall-clock, monotonic) seconds because that is the quantity the
overhead budget constrains. One line of JSON per record:

- span:  ``{"type": "span", "name": ..., "ts": ..., "duration": ...,
  "attrs": {...}}``
- event: ``{"type": "event", "name": ..., "ts": ..., "attrs": {...}}``

The sink appends with ``O_APPEND`` semantics and one ``write()`` call
per record, so several worker processes can share one trace file
without interleaving partial lines.
"""

from __future__ import annotations

import json
import os
import time
from typing import Any, Callable, Dict, List, Optional, TextIO, Tuple

#: Allowed values of a record's "type" field.
TRACE_RECORD_TYPES = ("span", "event")


class TraceSink:
    """Process-safe JSONL appender for trace records.

    Telemetry is an observer, never a participant: a failed write —
    real or injected by the fault plane — drops the record and bumps
    :attr:`dropped`, and the campaign continues. There is no retry and
    no strict mode here; a trace line is not worth aborting hours of
    campaigning for, and retrying the sink from inside the telemetry
    path would recurse.
    """

    def __init__(self, path: str, injector=None):
        self.path = path
        self.injector = injector
        #: Records lost to sink write failures (real or injected).
        self.dropped = 0
        directory = os.path.dirname(os.path.abspath(path))
        os.makedirs(directory, exist_ok=True)
        self._handle: Optional[TextIO] = open(path, "a", encoding="utf-8")

    def emit(self, record: Dict[str, Any]) -> None:
        if self._handle is None:
            return
        line = json.dumps(record, sort_keys=True, default=str)
        if self.injector is not None and \
                self.injector.fault_for("telemetry.emit",
                                        ("transient",)) is not None:
            self.dropped += 1
            return
        try:
            self._handle.write(line + "\n")
            self._handle.flush()
        except OSError:
            self.dropped += 1

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    # Open file handles cannot cross the checkpoint pickle boundary;
    # a restored sink reopens its path in append mode, so a resumed
    # campaign keeps extending the same trace file. The injector is
    # dropped rather than pickled — carrying it would close a reference
    # cycle (injector -> telemetry -> sink -> injector) that
    # Telemetry.__reduce__ cannot express — and the campaign re-attaches
    # it right after a checkpoint restore.
    def __getstate__(self) -> Dict[str, Any]:
        return {"path": self.path, "open": self._handle is not None,
                "dropped": self.dropped}

    def __setstate__(self, state: Dict[str, Any]) -> None:
        self.path = state["path"]
        self.injector = None
        self.dropped = state.get("dropped", 0)
        self._handle = None
        if state.get("open"):
            directory = os.path.dirname(os.path.abspath(self.path))
            os.makedirs(directory, exist_ok=True)
            self._handle = open(self.path, "a", encoding="utf-8")


class _SpanHandle:
    """Context manager recording one span on exit."""

    __slots__ = ("_tracer", "name", "attrs", "_sim_start", "_wall_start")

    def __init__(self, tracer: "Tracer", name: str, attrs: Dict[str, Any]):
        self._tracer = tracer
        self.name = name
        self.attrs = attrs
        self._sim_start = 0.0
        self._wall_start = 0.0

    def __enter__(self) -> "_SpanHandle":
        self._sim_start = self._tracer.now()
        self._wall_start = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self._tracer.emit({
            "type": "span",
            "name": self.name,
            "ts": self._sim_start,
            "duration": time.perf_counter() - self._wall_start,
            "attrs": self.attrs,
        })


class _NullSpan:
    """A reusable no-op span handle."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        pass


_NULL_SPAN = _NullSpan()


class Tracer:
    """Creates spans and point events timestamped with simulated time."""

    enabled = True

    def __init__(self, now_fn: Callable[[], float],
                 sink: Optional[TraceSink] = None):
        self.now = now_fn
        self.sink = sink

    def emit(self, record: Dict[str, Any]) -> None:
        if self.sink is not None:
            self.sink.emit(record)

    def span(self, name: str, **attrs: Any):
        return _SpanHandle(self, name, attrs)

    def event(self, name: str, **attrs: Any) -> None:
        self.emit({
            "type": "event", "name": name, "ts": self.now(), "attrs": attrs,
        })


def _zero_now() -> float:
    """Picklable stand-in clock for the no-op tracer."""
    return 0.0


class NullTracer(Tracer):
    """Discards everything; span() returns one shared no-op handle."""

    enabled = False

    def __init__(self):
        super().__init__(now_fn=_zero_now, sink=None)

    def emit(self, record: Dict[str, Any]) -> None:
        pass

    def span(self, name: str, **attrs: Any):
        return _NULL_SPAN

    def event(self, name: str, **attrs: Any) -> None:
        pass


# ---------------------------------------------------------------------------
# Trace schema validation (used by tests and the CI metrics-smoke job)
# ---------------------------------------------------------------------------


def validate_record(record: Any) -> List[str]:
    """Validate one decoded trace record; returns a list of problems."""
    errors: List[str] = []
    if not isinstance(record, dict):
        return ["record is not an object"]
    kind = record.get("type")
    if kind not in TRACE_RECORD_TYPES:
        errors.append("invalid type %r" % (kind,))
    name = record.get("name")
    if not isinstance(name, str) or not name:
        errors.append("missing or empty name")
    ts = record.get("ts")
    if not isinstance(ts, (int, float)) or isinstance(ts, bool) or ts < 0:
        errors.append("ts must be a non-negative number")
    if not isinstance(record.get("attrs"), dict):
        errors.append("attrs must be an object")
    if kind == "span":
        duration = record.get("duration")
        if (not isinstance(duration, (int, float))
                or isinstance(duration, bool) or duration < 0):
            errors.append("span duration must be a non-negative number")
    return errors


def validate_trace_file(path: str) -> Tuple[int, List[str]]:
    """Validate a JSONL trace file; returns (record count, problems)."""
    count = 0
    errors: List[str] = []
    with open(path, "r", encoding="utf-8") as handle:
        for lineno, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except ValueError as exc:
                errors.append("line %d: invalid JSON (%s)" % (lineno, exc))
                continue
            count += 1
            for problem in validate_record(record):
                errors.append("line %d: %s" % (lineno, problem))
    return count, errors
