"""repro.telemetry: always-on observability for the fuzzing loop.

A lightweight, dependency-free metrics/tracing layer threaded through
the campaign's hot paths: engine iterations, scheduler decisions, sync
rounds, supervisor transitions and the experiment executor. It exists
so accounting regressions (silent seed-sync drops, miscounted coverage)
surface as numbers instead of as quietly wrong evaluation tables.

Usage::

    config = CampaignConfig(telemetry=TelemetryConfig(enabled=True))
    result = run_campaign(target, pit, mode, config)
    result.metrics["counters"]["sync.seeds_dropped"]   # -> 0 when healthy

Disabled (the default) the campaign carries :data:`NULL_TELEMETRY`: one
shared object whose instruments are no-ops, so the hot path pays a few
no-op method calls and chaos-free campaigns stay bit-identical to the
un-instrumented runner.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Any, Callable, Dict, Optional, Sequence

from repro.telemetry.metrics import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullRegistry,
    render_key,
)
from repro.telemetry.tracing import (
    NullTracer,
    TraceSink,
    Tracer,
    validate_record,
    validate_trace_file,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullRegistry",
    "NullTracer",
    "NULL_TELEMETRY",
    "Telemetry",
    "TelemetryConfig",
    "TraceSink",
    "Tracer",
    "render_key",
    "validate_record",
    "validate_trace_file",
]


@dataclass(frozen=True)
class TelemetryConfig:
    """Picklable description of a campaign's telemetry (crosses the
    executor's process boundary; the live objects are rebuilt inside)."""

    enabled: bool = False
    #: JSONL trace file; appended to, shared safely across workers.
    trace_path: Optional[str] = None


class Telemetry:
    """Facade bundling one registry, one tracer and one optional sink."""

    def __init__(self, registry: MetricsRegistry, tracer: Tracer,
                 sink: Optional[TraceSink] = None, enabled: bool = True):
        self.registry = registry
        self.tracer = tracer
        self.sink = sink
        self.enabled = enabled

    @classmethod
    def from_config(cls, config: Optional[TelemetryConfig],
                    now_fn: Optional[Callable[[], float]] = None,
                    injector=None) -> "Telemetry":
        """Build live telemetry for a campaign (or the shared no-op).

        ``injector`` is the campaign's fault-plane injector (duck-typed
        to avoid an import cycle); the sink consults it per write and
        drops records on injected sink faults instead of aborting.
        """
        if config is None or not config.enabled:
            return NULL_TELEMETRY
        sink = (TraceSink(config.trace_path, injector=injector)
                if config.trace_path else None)
        return cls(
            registry=MetricsRegistry(),
            tracer=Tracer(now_fn or time.monotonic, sink=sink),
            sink=sink,
            enabled=True,
        )

    # -- instruments -------------------------------------------------------

    def counter(self, name: str, **labels: Any) -> Counter:
        return self.registry.counter(name, **labels)

    def gauge(self, name: str, **labels: Any) -> Gauge:
        return self.registry.gauge(name, **labels)

    def histogram(self, name: str, bounds: Sequence[float] = DEFAULT_BUCKETS,
                  **labels: Any) -> Histogram:
        return self.registry.histogram(name, bounds, **labels)

    # -- tracing -----------------------------------------------------------

    def span(self, name: str, **attrs: Any):
        return self.tracer.span(name, **attrs)

    def event(self, name: str, **attrs: Any) -> None:
        self.tracer.event(name, **attrs)

    # -- lifecycle ---------------------------------------------------------

    def snapshot(self) -> Dict[str, Any]:
        return self.registry.snapshot()

    def close(self) -> None:
        if self.sink is not None:
            self.sink.close()

    def __reduce__(self):
        # Campaign checkpoints pickle the whole loop state; the shared
        # no-op must come back as the same singleton (identity matters:
        # instruments cached on engines stay no-ops), and live telemetry
        # rebuilds from its parts (the sink reopens its file itself).
        if not self.enabled:
            return (_restore_null_telemetry, ())
        return (Telemetry, (self.registry, self.tracer, self.sink, self.enabled))


def _restore_null_telemetry() -> "Telemetry":
    """Unpickle hook: disabled telemetry is always the shared no-op."""
    return NULL_TELEMETRY


#: The shared disabled instance: every instrument is a no-op, nothing is
#: ever recorded, snapshot() is empty. Safe to share between campaigns.
NULL_TELEMETRY = Telemetry(
    registry=NullRegistry(), tracer=NullTracer(), sink=None, enabled=False,
)
