"""Dependency-free metrics: counters, gauges, histograms with labels.

A :class:`MetricsRegistry` owns every metric series created during a
campaign. A series is identified by a metric name plus a (sorted) label
set, so the same code path can emit per-instance or per-strategy series
without pre-declaring them::

    registry.counter("engine.execs", instance=0).inc()
    registry.counter("sync.seeds_dropped").value  # -> 0 on healthy runs

Snapshots are plain, deterministically ordered dicts (JSON-ready):
metric series appear sorted by rendered key, so two identical campaigns
produce byte-identical snapshots.

When telemetry is disabled the campaign holds a :class:`NullRegistry`
instead: it hands out one shared no-op instrument per type, so hot-path
instrumentation costs a couple of no-op method calls and allocates
nothing.
"""

from __future__ import annotations

from typing import Any, Dict, Optional, Sequence, Tuple

#: Upper bounds of the default histogram buckets (seconds-ish scale);
#: the final bucket is unbounded.
DEFAULT_BUCKETS: Tuple[float, ...] = (
    0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 10.0, 60.0, 300.0,
)


def render_key(name: str, labels: Tuple[Tuple[str, str], ...]) -> str:
    """Stable series key: ``name{k1=v1,k2=v2}`` with sorted labels."""
    if not labels:
        return name
    return "%s{%s}" % (name, ",".join("%s=%s" % kv for kv in labels))


def _label_items(labels: Dict[str, Any]) -> Tuple[Tuple[str, str], ...]:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("name", "labels", "_value")

    def __init__(self, name: str, labels: Tuple[Tuple[str, str], ...] = ()):
        self.name = name
        self.labels = labels
        self._value = 0

    def inc(self, amount: int = 1) -> None:
        if amount < 0:
            raise ValueError("counters only go up, got %r" % (amount,))
        self._value += amount

    @property
    def value(self) -> int:
        return self._value


class Gauge:
    """A point-in-time value (last write wins)."""

    __slots__ = ("name", "labels", "_value")

    def __init__(self, name: str, labels: Tuple[Tuple[str, str], ...] = ()):
        self.name = name
        self.labels = labels
        self._value = 0.0

    def set(self, value: float) -> None:
        self._value = float(value)

    @property
    def value(self) -> float:
        return self._value


class Histogram:
    """A distribution: count/sum/min/max plus cumulative buckets."""

    __slots__ = ("name", "labels", "bounds", "bucket_counts",
                 "count", "total", "minimum", "maximum")

    def __init__(self, name: str, labels: Tuple[Tuple[str, str], ...] = (),
                 bounds: Sequence[float] = DEFAULT_BUCKETS):
        self.name = name
        self.labels = labels
        self.bounds = tuple(bounds)
        self.bucket_counts = [0] * (len(self.bounds) + 1)
        self.count = 0
        self.total = 0.0
        self.minimum: Optional[float] = None
        self.maximum: Optional[float] = None

    def observe(self, value: float) -> None:
        value = float(value)
        self.count += 1
        self.total += value
        if self.minimum is None or value < self.minimum:
            self.minimum = value
        if self.maximum is None or value > self.maximum:
            self.maximum = value
        for index, bound in enumerate(self.bounds):
            if value <= bound:
                self.bucket_counts[index] += 1
                return
        self.bucket_counts[-1] += 1

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0


class MetricsRegistry:
    """Creates and retains every metric series of one campaign."""

    enabled = True

    def __init__(self):
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}

    def counter(self, name: str, **labels: Any) -> Counter:
        items = _label_items(labels)
        key = render_key(name, items)
        series = self._counters.get(key)
        if series is None:
            series = self._counters[key] = Counter(name, items)
        return series

    def gauge(self, name: str, **labels: Any) -> Gauge:
        items = _label_items(labels)
        key = render_key(name, items)
        series = self._gauges.get(key)
        if series is None:
            series = self._gauges[key] = Gauge(name, items)
        return series

    def histogram(self, name: str, bounds: Sequence[float] = DEFAULT_BUCKETS,
                  **labels: Any) -> Histogram:
        items = _label_items(labels)
        key = render_key(name, items)
        series = self._histograms.get(key)
        if series is None:
            series = self._histograms[key] = Histogram(name, items, bounds)
        return series

    def counter_total(self, name: str) -> int:
        """Sum of a counter across every label combination."""
        return sum(c.value for c in self._counters.values() if c.name == name)

    def snapshot(self) -> Dict[str, Any]:
        """A deterministic, JSON-ready dump of every series."""
        return {
            "counters": {
                key: self._counters[key].value
                for key in sorted(self._counters)
            },
            "gauges": {
                key: self._gauges[key].value
                for key in sorted(self._gauges)
            },
            "histograms": {
                key: {
                    "count": h.count,
                    "sum": h.total,
                    "min": h.minimum,
                    "max": h.maximum,
                    "buckets": [
                        [bound, count] for bound, count in zip(
                            list(h.bounds) + ["inf"], h.bucket_counts,
                        )
                    ],
                }
                for key, h in sorted(self._histograms.items())
            },
        }


class _NullCounter(Counter):
    __slots__ = ()

    def inc(self, amount: int = 1) -> None:
        pass


class _NullGauge(Gauge):
    __slots__ = ()

    def set(self, value: float) -> None:
        pass


class _NullHistogram(Histogram):
    __slots__ = ()

    def observe(self, value: float) -> None:
        pass


class NullRegistry(MetricsRegistry):
    """Hands out shared no-op instruments; snapshot is always empty."""

    enabled = False

    def __init__(self):
        super().__init__()
        self._counter = _NullCounter("null")
        self._gauge = _NullGauge("null")
        self._histogram = _NullHistogram("null", bounds=())

    def counter(self, name: str, **labels: Any) -> Counter:
        return self._counter

    def gauge(self, name: str, **labels: Any) -> Gauge:
        return self._gauge

    def histogram(self, name: str, bounds: Sequence[float] = DEFAULT_BUCKETS,
                  **labels: Any) -> Histogram:
        return self._histogram

    def snapshot(self) -> Dict[str, Any]:
        return {"counters": {}, "gauges": {}, "histograms": {}}
