"""Validate JSONL trace files against the trace schema.

Usage::

    python -m repro.telemetry trace.jsonl [more.jsonl ...]

Exits 0 when every record in every file validates, 1 otherwise (or when
a file is missing/empty). The CI metrics-smoke job runs this over the
trace a short campaign produced.
"""

from __future__ import annotations

import sys
from typing import List, Optional

from repro.telemetry.tracing import validate_trace_file


def main(argv: Optional[List[str]] = None, out=None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    out = out or sys.stdout
    if not argv:
        out.write("usage: python -m repro.telemetry TRACE.jsonl [...]\n")
        return 2
    status = 0
    for path in argv:
        try:
            count, errors = validate_trace_file(path)
        except OSError as exc:
            out.write("%s: unreadable (%s)\n" % (path, exc))
            status = 1
            continue
        if errors:
            for problem in errors:
                out.write("%s: %s\n" % (path, problem))
            status = 1
        elif count == 0:
            out.write("%s: no trace records\n" % path)
            status = 1
        else:
            out.write("%s: %d records ok\n" % (path, count))
    return status


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
