"""Protocol pits: the data and state models shared by every fuzzer.

The paper keeps Pit files identical across fuzzers for fairness; likewise
each module here exposes a single ``state_model()`` factory used by
Peach-parallel, SPFuzz and CMFuzz alike.
"""

from typing import Callable, Dict

from repro.fuzzing.statemodel import StateModel


def pit_registry() -> Dict[str, Callable[[], StateModel]]:
    """Target name -> state-model factory for the six protocols."""
    from repro.pits import amqp, coap, dds, dns, dtls, mqtt

    return {
        "mosquitto": mqtt.state_model,
        "libcoap": coap.state_model,
        "cyclonedds": dds.state_model,
        "openssl": dtls.state_model,
        "qpid": amqp.state_model,
        "dnsmasq": dns.state_model,
    }
