"""Protocol pits: the data and state models shared by every fuzzer.

The paper keeps Pit files identical across fuzzers for fairness; likewise
each target registers a single ``state_model()`` factory used by
Peach-parallel, SPFuzz and CMFuzz alike. The catalogue derives from the
target plugin registry, so a target's pit ships in (or next to) its own
directory and ``set(pit_registry()) == set(target_names())`` holds by
construction.
"""

from typing import Callable, Dict

from repro.fuzzing.statemodel import StateModel


def pit_registry() -> Dict[str, Callable[[], StateModel]]:
    """Target name -> state-model factory for every registered target."""
    from repro.targets.registry import target_entries

    return {entry.name: entry.state_model for entry in target_entries()}
