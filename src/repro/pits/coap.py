"""Pit for the libcoap target: RFC 7252 message formats.

Option lists are modelled as raw blobs with valid defaults (delta-encoded
bytes); mutators corrupt the encoding, which is exactly where CoAP
parsers historically break.
"""

from repro.fuzzing.datamodel import Blob, DataModel, Number
from repro.fuzzing.statemodel import Action, State, StateModel

# Delta-encoded option bytes for "Uri-Path: sensors / temp":
# option 11 (delta 11, len 7) "sensors", then delta 0 len 4 "temp".
_URI_SENSORS_TEMP = b"\xb7sensors\x04temp"
# Uri-Path "store" (delta 11, len 5).
_URI_STORE = b"\xb5store"
# Deltas below are relative to the preceding Uri-Path option (number 11).
# Block2 (23): delta 12, len 1, value num=0 more=0 szx=2 (64 B).
_BLOCK2_OPT = b"\xc1\x02"
# Block1 (27): delta 16 -> extended-8 (16-13=3); num=0 more=1 szx=2.
_BLOCK1_MORE = b"\xd1\x03\x0a"
# Block1 num=1 more=0 szx=2.
_BLOCK1_LAST = b"\xd1\x03\x12"
# Q-Block1 (19): delta 8; num=0 more=1 szx=2.
_QBLOCK1_MORE = b"\x81\x0a"
# Q-Block1 num=1 more=0 szx=2.
_QBLOCK1_LAST = b"\x81\x12"
# Observe register (6): delta 6 len 0.
_OBSERVE_REG = b"\x60"


def _request(name: str, code: int, options: bytes, payload: bytes = b"") -> DataModel:
    children = [
        Number("ver_type_tkl", bits=8, default=0x42),  # ver1, CON, TKL 2
        Number("code", bits=8, default=code),
        Number("mid", bits=16, default=0x1234),
        Blob("token", default=b"\xca\xfe"),
        Blob("options", default=options),
    ]
    if payload:
        children.append(Blob("marker", default=b"\xff"))
        children.append(Blob("payload", default=payload))
    return DataModel(name, children)


def state_model() -> StateModel:
    """The CoAP request/response state model shared by all fuzzers."""
    data_models = [
        _request("Get", 0x01, _URI_SENSORS_TEMP),
        _request("GetBlock2", 0x01, _URI_SENSORS_TEMP + _BLOCK2_OPT),
        _request("GetObserve", 0x01, _OBSERVE_REG + _URI_SENSORS_TEMP.replace(b"\xb7", b"\x57")),
        # Content-Format 0 (text/plain): delta 1 after Uri-Path (11).
        _request("PutSimple", 0x03, _URI_STORE + b"\x11\x00", b"payload-bytes"),
        _request("PutBlock1First", 0x03, _URI_STORE + _BLOCK1_MORE, b"A" * 64),
        _request("PutBlock1Last", 0x03, _URI_STORE + _BLOCK1_LAST, b"B" * 32),
        _request("PutQBlockFirst", 0x03, _URI_STORE + _QBLOCK1_MORE, b"C" * 64),
        _request("PutQBlockLast", 0x03, _URI_STORE + _QBLOCK1_LAST, b"D" * 32),
        _request("Post", 0x02, _URI_STORE, b"new-resource"),
        _request("Delete", 0x04, _URI_STORE),
        DataModel("Ping", [Number("ver_type_tkl", bits=8, default=0x40),
                           Number("code", bits=8, default=0x00),
                           Number("mid", bits=16, default=0x0001)]),
    ]
    states = [
        State("start")
        .add_transition("get", 3.0)
        .add_transition("put_simple", 2.0)
        .add_transition("put_block", 2.0)
        .add_transition("put_qblock", 2.0)
        .add_transition("observe", 1.0)
        .add_transition("post", 1.0)
        .add_transition("ping", 0.5),
        State("get", [Action("send", "Get"), Action("send", "GetBlock2")])
        .add_transition("put_simple", 1.0)
        .add_transition("finish", 2.0),
        State("put_simple", [Action("send", "PutSimple")])
        .add_transition("get", 1.0)
        .add_transition("delete", 1.0)
        .add_transition("finish", 1.0),
        State("put_block", [Action("send", "PutBlock1First"), Action("send", "PutBlock1Last")])
        .add_transition("get", 1.0)
        .add_transition("finish", 1.0),
        State("put_qblock", [Action("send", "PutQBlockFirst"), Action("send", "PutQBlockLast")])
        .add_transition("get", 1.0)
        .add_transition("finish", 1.0),
        State("observe", [Action("send", "GetObserve")]).add_transition("finish"),
        State("post", [Action("send", "Post")]).add_transition("delete", 1.0)
        .add_transition("finish", 1.0),
        State("delete", [Action("send", "Delete")]).add_transition("finish"),
        State("ping", [Action("send", "Ping")]).add_transition("finish"),
        State("finish"),
    ]
    return StateModel("coap-session", "start", states, data_models)
