"""Pit for the Qpid target: AMQP 1.0 headers, frames and performatives."""

from repro.fuzzing.datamodel import Blob, Block, DataModel, Number, Size
from repro.fuzzing.statemodel import Action, State, StateModel


def _frame(name: str, code: int, channel: int = 0, args: bytes = b"",
           frame_type: int = 0) -> DataModel:
    return DataModel(
        name,
        [
            Size("size", of="rest", bits=32, adjust=4),
            Block(
                "rest",
                [
                    Number("doff", bits=8, default=2),
                    Number("type", bits=8, default=frame_type),
                    Number("channel", bits=16, default=channel),
                    Number("descriptor", bits=8, default=0x00),
                    Number("code", bits=8, default=code),
                    Blob("args", default=args),
                ],
            ),
        ],
    )


def state_model() -> StateModel:
    """The AMQP connection state model shared by all fuzzers."""
    data_models = [
        DataModel("Header", [Blob("magic", default=b"AMQP\x00\x01\x00\x00")]),
        DataModel("SaslHeader", [Blob("magic", default=b"AMQP\x03\x01\x00\x00")]),
        _frame("SaslInit", 0x41, args=b"ANONYMOUS\x00", frame_type=1),
        _frame("Open", 0x10, args=b"\x00\x00\x7f\xff"),
        _frame("Begin", 0x11, channel=1),
        _frame("Attach", 0x12, channel=1, args=b"\x05\x01"),
        _frame("Flow", 0x13, channel=1, args=b"\x00\x64"),
        _frame("Transfer", 0x14, channel=1, args=b"\x05\x00payload"),
        _frame("TransferSettled", 0x14, channel=1, args=b"\x05\x01payload"),
        _frame("Disposition", 0x15, channel=1, args=b"\x00"),
        _frame("MgmtQuery", 0x14, channel=1, args=b"\x05\x01qmf:getObjects broker"),
        _frame("Detach", 0x16, channel=1, args=b"\x05"),
        _frame("End", 0x17, channel=1),
        _frame("Close", 0x18),
        DataModel("Heartbeat", [Size("size", of="rest", bits=32, adjust=4),
                                Block("rest", [Number("doff", bits=8, default=2),
                                               Number("type", bits=8, default=0),
                                               Number("channel", bits=16, default=0)])]),
    ]
    states = [
        State("start")
        .add_transition("plain_open", 3.0)
        .add_transition("sasl_open", 1.0),
        State("plain_open", [Action("send", "Header"), Action("send", "Open")])
        .add_transition("session", 3.0)
        .add_transition("teardown", 1.0),
        State("sasl_open",
              [Action("send", "SaslHeader"), Action("send", "SaslInit"),
               Action("send", "Header"), Action("send", "Open")])
        .add_transition("session", 2.0)
        .add_transition("teardown", 1.0),
        State("session", [Action("send", "Begin"), Action("send", "Attach")])
        .add_transition("publish", 3.0)
        .add_transition("flow", 1.0)
        .add_transition("management", 0.5)
        .add_transition("teardown", 1.0),
        State("publish",
              [Action("send", "Transfer"), Action("send", "TransferSettled"),
               Action("send", "Disposition")])
        .add_transition("flow", 1.0)
        .add_transition("detach", 1.0)
        .add_transition("teardown", 1.0),
        State("flow", [Action("send", "Flow"), Action("send", "Heartbeat")])
        .add_transition("publish", 1.0)
        .add_transition("teardown", 1.0),
        State("management", [Action("send", "MgmtQuery")])
        .add_transition("teardown", 1.0),
        State("detach", [Action("send", "Detach"), Action("send", "End")])
        .add_transition("teardown", 1.0),
        State("teardown", [Action("send", "Close")]),
    ]
    return StateModel("amqp-session", "start", states, data_models)
