"""Pit for the dnsmasq target: DNS query formats (RFC 1035)."""

from repro.fuzzing.datamodel import Blob, DataModel, Number
from repro.fuzzing.statemodel import Action, State, StateModel


def _encode_qname(name: str) -> bytes:
    out = b""
    for label in name.split("."):
        out += bytes([len(label)]) + label.encode("ascii")
    return out + b"\x00"


def _query(name: str, qname: str, qtype: int, rd: int = 1,
           extra: bytes = b"", arcount: int = 0) -> DataModel:
    return DataModel(
        name,
        [
            Number("id", bits=16, default=0x1A2B),
            Number("flags", bits=16, default=0x0100 if rd else 0x0000),
            Number("qdcount", bits=16, default=1),
            Number("ancount", bits=16, default=0),
            Number("nscount", bits=16, default=0),
            Number("arcount", bits=16, default=arcount),
            Blob("qname", default=_encode_qname(qname)),
            Number("qtype", bits=16, default=qtype),
            Number("qclass", bits=16, default=1),
            Blob("extra", default=extra),
        ],
    )


# EDNS0 OPT pseudo-record: root, type 41, udp 4096, rcode/flags, rdlen 0.
_OPT_RR = b"\x00" + (41).to_bytes(2, "big") + (4096).to_bytes(2, "big") + bytes(5)


def state_model() -> StateModel:
    """The DNS query state model shared by all fuzzers."""
    data_models = [
        _query("QueryA", "printer.lan", 1),
        _query("QueryAAAA", "www.example.com", 28),
        _query("QueryShort", "router", 1),
        _query("QueryPtr", "1.1.168.192.in-addr.arpa", 12),
        _query("QuerySrv", "_ldap._tcp.example.com", 33),
        _query("QueryAny", "example.com", 255),
        _query("QueryTxt", "example.com", 16),
        _query("QueryNoRd", "example.com", 1, rd=0),
        _query("QueryEdns", "www.example.com", 1, extra=_OPT_RR, arcount=1),
        _query("QueryRrsig", "example.com", 46),
        # A truncated header fragment: exercises the runt-datagram path.
        DataModel("QueryRunt", [Blob("fragment", default=b"\x1a\x2b\x01\x00\x00\x01\x00\x00\x00\x00")]),
    ]
    states = [
        State("start")
        .add_transition("local", 3.0)
        .add_transition("remote", 3.0)
        .add_transition("reverse", 1.0)
        .add_transition("service", 1.0)
        .add_transition("edns", 1.0)
        .add_transition("noise", 0.5),
        State("local", [Action("send", "QueryA"), Action("send", "QueryShort")])
        .add_transition("remote", 1.0)
        .add_transition("finish", 2.0),
        State("remote", [Action("send", "QueryAAAA"), Action("send", "QueryNoRd")])
        .add_transition("edns", 1.0)
        .add_transition("finish", 2.0),
        State("reverse", [Action("send", "QueryPtr")])
        .add_transition("finish", 1.0),
        State("service",
              [Action("send", "QuerySrv"), Action("send", "QueryAny"),
               Action("send", "QueryTxt")])
        .add_transition("finish", 1.0),
        State("edns", [Action("send", "QueryEdns"), Action("send", "QueryRrsig")])
        .add_transition("finish", 1.0),
        State("noise", [Action("send", "QueryRunt")])
        .add_transition("finish", 1.0),
        State("finish"),
    ]
    return StateModel("dns-session", "start", states, data_models)
