"""Pit for the CycloneDDS target: RTPS message formats."""

from repro.fuzzing.datamodel import Blob, Block, DataModel, Number, Str
from repro.fuzzing.statemodel import Action, State, StateModel

_GUID_PREFIX = bytes(range(12))


def _header_children():
    return [
        Str("magic", default="RTPS"),
        Number("major", bits=8, default=2),
        Number("minor", bits=8, default=1),
        Number("vendor", bits=16, default=0x0110),
        Blob("guid_prefix", default=_GUID_PREFIX),
    ]


def _submessage(kind: int, flags: int, body: bytes, tag: str = "sub") -> list:
    return [
        Block(
            tag,
            [
                Number("kind", bits=8, default=kind),
                Number("flags", bits=8, default=flags),
                Number("length", bits=16, default=len(body)),
                Blob("body", default=body),
            ],
        )
    ]


def _data_body(writer: int = 7, seq: int = 1) -> bytes:
    return (b"\x00\x00\x00\x00"
            + writer.to_bytes(4, "big")
            + seq.to_bytes(8, "big")
            + b"sample-payload")


def _heartbeat_body(first: int = 1, last: int = 3) -> bytes:
    return (b"\x00\x00\x00\x07"
            + b"\x00\x00\x00\x08"[:4]
            + first.to_bytes(8, "big")
            + last.to_bytes(8, "big"))


def _qos_body(writer: int = 9, seq: int = 4) -> bytes:
    """DATA body with an inline-QoS parameter list (big-endian)."""
    params = (
        b"\x00\x05\x00\x04" + b"tpc\x00"          # PID topic name
        + b"\x00\x71\x00\x04" + b"\x00\x00\x00\x01"  # PID status info: disposed
        + b"\x00\x01\x00\x00"                      # sentinel
    )
    return (b"\x00\x00\x00\x00"
            + writer.to_bytes(4, "big")
            + seq.to_bytes(8, "big")
            + params)


def _spdp_body() -> bytes:
    """SPDP participant announcement: DATA to the builtin SPDP writer."""
    params = (
        b"\x00\x50\x00\x10" + bytes(range(12)) + b"\x00\x01\x00\xc1"  # GUID
        + b"\x00\x58\x00\x04" + b"\x00\x00\x0c\x3f"                   # endpoint set
        + b"\x00\x02\x00\x08" + b"\x00\x00\x00\x1e" + bytes(4)        # lease 30s
        + b"\x00\x01\x00\x00"                                          # sentinel
    )
    return (b"\x00\x00\x00\x00"
            + (0x000100C2).to_bytes(4, "big")
            + (1).to_bytes(8, "big")
            + b"\x00\x00\x00\x00"  # CDR_BE encapsulation
            + params)


def _sedp_body() -> bytes:
    """SEDP publication announcement (topic + type names)."""
    params = (
        b"\x00\x05\x00\x08" + b"chatter\x00"
        + b"\x00\x07\x00\x08" + b"String\x00\x00"
        + b"\x00\x01\x00\x00"
    )
    return (b"\x00\x00\x00\x00"
            + (0x000003C2).to_bytes(4, "big")
            + (1).to_bytes(8, "big")
            + b"\x00\x00\x00\x00"
            + params)


def _frag_body(writer: int = 7, seq: int = 2, frag: int = 1) -> bytes:
    return (b"\x00\x00\x00\x00"
            + writer.to_bytes(4, "big")
            + seq.to_bytes(8, "big")
            + frag.to_bytes(4, "big")
            + b"frag-bytes")


def state_model() -> StateModel:
    """The RTPS exchange state model shared by all fuzzers."""
    data_models = [
        DataModel("Data", _header_children()
                  + _submessage(0x15, 0x00, _data_body())),
        DataModel("DataQos", _header_children()
                  + _submessage(0x15, 0x02, _qos_body())),
        DataModel("DataFrag", _header_children()
                  + _submessage(0x16, 0x00, _frag_body())),
        DataModel("Heartbeat", _header_children()
                  + _submessage(0x07, 0x00, _heartbeat_body())),
        DataModel("HeartbeatFinal", _header_children()
                  + _submessage(0x07, 0x02, _heartbeat_body(2, 5))),
        DataModel("AckNack", _header_children()
                  + _submessage(0x06, 0x00, b"\x00" * 12)),
        DataModel("Gap", _header_children()
                  + _submessage(0x08, 0x00, b"\x00" * 16)),
        DataModel("InfoTsData", _header_children()
                  + _submessage(0x09, 0x00, b"\x00\x00\x00\x10" + b"\x00" * 4, tag="ts")
                  + _submessage(0x15, 0x00, _data_body(writer=11, seq=9), tag="data")),
        DataModel("InfoDst", _header_children()
                  + _submessage(0x0e, 0x00, bytes(12))),
        DataModel("Pad", _header_children() + _submessage(0x01, 0x00, b"")),
        DataModel("SpdpAnnounce", _header_children()
                  + _submessage(0x15, 0x00, _spdp_body())),
        DataModel("SedpPublish", _header_children()
                  + _submessage(0x15, 0x00, _sedp_body())),
    ]
    states = [
        State("start")
        .add_transition("discover", 2.0)
        .add_transition("publish", 3.0)
        .add_transition("reliable", 2.0),
        State("discover",
              [Action("send", "SpdpAnnounce"), Action("send", "SedpPublish"),
               Action("send", "InfoDst"), Action("send", "Pad")])
        .add_transition("publish", 2.0)
        .add_transition("finish", 1.0),
        State("publish", [Action("send", "Data"), Action("send", "DataQos")])
        .add_transition("fragments", 1.0)
        .add_transition("reliable", 1.0)
        .add_transition("finish", 1.0),
        State("fragments", [Action("send", "DataFrag"), Action("send", "DataFrag")])
        .add_transition("reliable", 1.0)
        .add_transition("finish", 1.0),
        State("reliable",
              [Action("send", "Heartbeat"), Action("send", "AckNack"),
               Action("send", "HeartbeatFinal")])
        .add_transition("gap", 1.0)
        .add_transition("finish", 2.0),
        State("gap", [Action("send", "Gap"), Action("send", "InfoTsData")])
        .add_transition("finish", 1.0),
        State("finish"),
    ]
    return StateModel("dds-session", "start", states, data_models)
