"""Pit for the Mosquitto target: MQTT v3.1.1 / v5 message formats.

Defaults render protocol-compliant packets (the generation-based engine's
near-valid starting point); mutators then corrupt fields, switch QoS bits,
inflate lengths and flip protocol levels.
"""

from repro.fuzzing.datamodel import Blob, Block, DataModel, Number, Size, Str
from repro.fuzzing.statemodel import Action, State, StateModel


def _connect_model() -> DataModel:
    return DataModel(
        "Connect",
        [
            Number("header", bits=8, default=0x10),
            Size("remaining", of="body", bits=8),
            Block(
                "body",
                [
                    Size("proto_len", of="body.proto", bits=16),
                    Str("proto", default="MQTT"),
                    Number("level", bits=8, default=4),
                    Number("flags", bits=8, default=0x02),
                    Number("keepalive", bits=16, default=60),
                    Size("cid_len", of="body.client_id", bits=16),
                    Str("client_id", default="fuzz-client"),
                ],
            ),
        ],
    )


def _connect5_model() -> DataModel:
    return DataModel(
        "Connect5",
        [
            Number("header", bits=8, default=0x10),
            Size("remaining", of="body", bits=8),
            Block(
                "body",
                [
                    Size("proto_len", of="body.proto", bits=16),
                    Str("proto", default="MQTT"),
                    Number("level", bits=8, default=5),
                    Number("flags", bits=8, default=0x02),
                    Number("keepalive", bits=16, default=60),
                    Size("props_len", of="body.props", bits=8),
                    Blob("props", default=b"\x21\x00\x14"),  # receive maximum 20
                    Size("cid_len", of="body.client_id", bits=16),
                    Str("client_id", default="fuzz-client5"),
                ],
            ),
        ],
    )


def _connect_auth_model() -> DataModel:
    return DataModel(
        "ConnectAuth",
        [
            Number("header", bits=8, default=0x10),
            Size("remaining", of="body", bits=8),
            Block(
                "body",
                [
                    Size("proto_len", of="body.proto", bits=16),
                    Str("proto", default="MQTT"),
                    Number("level", bits=8, default=4),
                    Number("flags", bits=8, default=0xC2),
                    Number("keepalive", bits=16, default=60),
                    Size("cid_len", of="body.client_id", bits=16),
                    Str("client_id", default="auth-client"),
                    Size("user_len", of="body.username", bits=16),
                    Str("username", default="iot-user"),
                    Size("pass_len", of="body.password", bits=16),
                    Str("password", default="hunter2"),
                ],
            ),
        ],
    )


def _publish_model() -> DataModel:
    return DataModel(
        "Publish",
        [
            Number("header", bits=8, default=0x30),
            Size("remaining", of="body", bits=8),
            Block(
                "body",
                [
                    Size("topic_len", of="body.topic", bits=16),
                    Str("topic", default="sensors/temp"),
                    Blob("payload", default=b"23.5"),
                ],
            ),
        ],
    )


def _publish_qos2_model() -> DataModel:
    return DataModel(
        "Publish2",
        [
            Number("header", bits=8, default=0x34),
            Size("remaining", of="body", bits=8),
            Block(
                "body",
                [
                    Size("topic_len", of="body.topic", bits=16),
                    Str("topic", default="actuators/valve"),
                    Number("mid", bits=16, default=7),
                    Blob("payload", default=b"open"),
                ],
            ),
        ],
    )


def _publish5_alias_model() -> DataModel:
    """v5 publish registering topic alias 2 (property 0x23)."""
    return DataModel(
        "Publish5Alias",
        [
            Number("header", bits=8, default=0x30),
            Size("remaining", of="body", bits=8),
            Block(
                "body",
                [
                    Size("topic_len", of="body.topic", bits=16),
                    Str("topic", default="alias/topic"),
                    Size("props_len", of="body.props", bits=8),
                    Blob("props", default=b"\x23\x00\x02"),
                    Blob("payload", default=b"aliased"),
                ],
            ),
        ],
    )


def _pubrel_model() -> DataModel:
    return DataModel(
        "Pubrel",
        [
            Number("header", bits=8, default=0x62),
            Size("remaining", of="body", bits=8),
            Block("body", [Number("mid", bits=16, default=7)]),
        ],
    )


def _subscribe_model() -> DataModel:
    return DataModel(
        "Subscribe",
        [
            Number("header", bits=8, default=0x82),
            Size("remaining", of="body", bits=8),
            Block(
                "body",
                [
                    Number("mid", bits=16, default=11),
                    Size("filter_len", of="body.filter", bits=16),
                    Str("filter", default="sensors/#"),
                    Number("options", bits=8, default=1),
                ],
            ),
        ],
    )


def _publish_qos2_dup_model() -> DataModel:
    """A DUP retransmission of the QoS 2 publish (same message id)."""
    return DataModel(
        "Publish2Dup",
        [
            Number("header", bits=8, default=0x3C),
            Size("remaining", of="body", bits=8),
            Block(
                "body",
                [
                    Size("topic_len", of="body.topic", bits=16),
                    Str("topic", default="actuators/valve"),
                    Number("mid", bits=16, default=7),
                    Blob("payload", default=b"open"),
                ],
            ),
        ],
    )


def _unsubscribe_model() -> DataModel:
    return DataModel(
        "Unsubscribe",
        [
            Number("header", bits=8, default=0xA2),
            Size("remaining", of="body", bits=8),
            Block(
                "body",
                [
                    Number("mid", bits=16, default=12),
                    Size("filter_len", of="body.filter", bits=16),
                    Str("filter", default="sensors/#"),
                ],
            ),
        ],
    )


def _unsubscribe_sys_model() -> DataModel:
    """Unsubscribe from a $SYS broker topic (real pits carry known
    special topics as dictionary entries)."""
    return DataModel(
        "UnsubscribeSys",
        [
            Number("header", bits=8, default=0xA2),
            Size("remaining", of="body", bits=8),
            Block(
                "body",
                [
                    Number("mid", bits=16, default=13),
                    Size("filter_len", of="body.filter", bits=16),
                    Str("filter", default="$SYS/broker/bridge/addrs"),
                ],
            ),
        ],
    )


def _ping_model() -> DataModel:
    return DataModel("Ping", [Number("header", bits=8, default=0xC0),
                              Number("remaining", bits=8, default=0)])


def _disconnect_model() -> DataModel:
    return DataModel("Disconnect", [Number("header", bits=8, default=0xE0),
                                    Number("remaining", bits=8, default=0)])


def state_model() -> StateModel:
    """The MQTT session state model shared by all fuzzers."""
    states = [
        State("start")
        .add_transition("connect_v4", 2.0)
        .add_transition("connect_v5", 1.0)
        .add_transition("connect_auth", 1.0),
        State("connect_v4", [Action("send", "Connect")]).add_transition("session"),
        State("connect_v5", [Action("send", "Connect5")])
        .add_transition("session", 2.0)
        .add_transition("publish_alias", 1.0),
        State("publish_alias",
              [Action("send", "Publish5Alias"), Action("send", "Publish5Alias")])
        .add_transition("finish", 1.0),
        State("connect_auth", [Action("send", "ConnectAuth")]).add_transition("session"),
        State("session")
        .add_transition("publish_qos0", 3.0)
        .add_transition("publish_qos2", 2.0)
        .add_transition("subscribe", 2.0)
        .add_transition("unsubscribe", 1.0)
        .add_transition("unsubscribe_sys", 0.5)
        .add_transition("ping", 1.0),
        State("publish_qos0", [Action("send", "Publish")])
        .add_transition("subscribe", 1.0)
        .add_transition("finish", 2.0),
        State("publish_qos2", [Action("send", "Publish2"), Action("send", "Pubrel")])
        .add_transition("publish_qos0", 1.0)
        .add_transition("qos2_replay", 0.5)
        .add_transition("finish", 2.0),
        State("qos2_replay", [Action("send", "Publish2Dup")])
        .add_transition("finish", 1.0),
        State("subscribe", [Action("send", "Subscribe")])
        .add_transition("publish_qos2", 1.0)
        .add_transition("unsubscribe", 1.0)
        .add_transition("finish", 1.0),
        State("unsubscribe", [Action("send", "Unsubscribe")])
        .add_transition("finish"),
        State("unsubscribe_sys", [Action("send", "UnsubscribeSys")])
        .add_transition("finish"),
        State("ping", [Action("send", "Ping")]).add_transition("finish"),
        State("finish", [Action("send", "Disconnect")]),
    ]
    data_models = [
        _connect_model(),
        _connect5_model(),
        _connect_auth_model(),
        _publish_model(),
        _publish5_alias_model(),
        _publish_qos2_model(),
        _publish_qos2_dup_model(),
        _pubrel_model(),
        _subscribe_model(),
        _unsubscribe_model(),
        _unsubscribe_sys_model(),
        _ping_model(),
        _disconnect_model(),
    ]
    return StateModel("mqtt-session", "start", states, data_models)
