"""Pit for the OpenSSL DTLS target: record + handshake formats."""

from repro.fuzzing.datamodel import Blob, Block, DataModel, Number, Size
from repro.fuzzing.statemodel import Action, State, StateModel


def _record(name: str, content_type: int, seq: int, body_children) -> DataModel:
    return DataModel(
        name,
        [
            Number("content_type", bits=8, default=content_type),
            Number("version", bits=16, default=0xFEFD),
            Number("epoch", bits=16, default=0),
            Number("seq_hi", bits=16, default=0),
            Number("seq_lo", bits=32, default=seq),
            Size("length", of="body", bits=16),
            Block("body", body_children),
        ],
    )


def _handshake_header(msg_type: int, length: int, msg_seq: int):
    return [
        Number("msg_type", bits=8, default=msg_type),
        Number("len_hi", bits=8, default=0),
        Number("len_lo", bits=16, default=length),
        Number("msg_seq", bits=16, default=msg_seq),
        Number("frag_off_hi", bits=8, default=0),
        Number("frag_off_lo", bits=16, default=0),
        Number("frag_len_hi", bits=8, default=0),
        Number("frag_len_lo", bits=16, default=length),
    ]


def _client_hello(name: str, cookie: bytes, ciphers: bytes,
                  sid: bytes = b"") -> DataModel:
    payload = [
        Number("legacy_version", bits=16, default=0xFEFD),
        Blob("random", default=bytes(32)),
        Number("sid_len", bits=8, default=len(sid)),
    ]
    if sid:
        payload.append(Blob("sid", default=sid))
    payload.append(Number("cookie_len", bits=8, default=len(cookie)))
    if cookie:
        payload.append(Blob("cookie", default=cookie))
    payload.append(Blob("ciphers", default=ciphers))
    length = 34 + 2 + len(sid) + len(cookie) + len(ciphers)
    body = _handshake_header(1, length, 0) + payload
    return _record(name, 22, 1, body)


# Offered cipher ids: AES128-GCM, CHACHA20, PSK-AES128.
_CIPHERS_ALL = b"\x00\x9c\xcc\xa8\x00\xae"


def state_model() -> StateModel:
    """The DTLS handshake state model shared by all fuzzers."""
    data_models = [
        _client_hello("ClientHello", b"", _CIPHERS_ALL),
        _client_hello("ClientHelloCookie", b"C" * 32, _CIPHERS_ALL),
        _client_hello("ClientHelloResume", b"", _CIPHERS_ALL, sid=b"S" * 16),
        _record("ClientKeyExchange", 22, 2,
                _handshake_header(16, 4, 1) + [Blob("identity", default=b"\x00\x02id")]),
        _record("Certificate", 22, 3,
                _handshake_header(11, 8, 1) + [Blob("cert", default=b"\x30\x06cert")]),
        _record("ChangeCipherSpec", 20, 4, [Number("ccs", bits=8, default=1)]),
        _record("Finished", 22, 5,
                _handshake_header(20, 12, 2) + [Blob("verify_data", default=bytes(12))]),
        _record("AppData", 23, 6, [Blob("data", default=b"hello dtls")]),
        _record("Alert", 21, 7, [Number("level", bits=8, default=1),
                                 Number("code", bits=8, default=0)]),
    ]
    states = [
        State("start")
        .add_transition("hello", 3.0)
        .add_transition("hello_cookie", 1.0),
        State("hello",
              [Action("send", "ClientHello"), Action("send", "ClientHelloResume")])
        .add_transition("keyex", 2.0)
        .add_transition("finish", 1.0),
        State("hello_cookie",
              [Action("send", "ClientHello"), Action("send", "ClientHelloCookie")])
        .add_transition("keyex", 2.0)
        .add_transition("finish", 1.0),
        State("keyex",
              [Action("send", "Certificate"), Action("send", "ClientKeyExchange")])
        .add_transition("complete", 2.0)
        .add_transition("finish", 1.0),
        State("complete",
              [Action("send", "ChangeCipherSpec"), Action("send", "Finished"),
               Action("send", "AppData")])
        .add_transition("renego", 0.5)
        .add_transition("resume", 0.5)
        .add_transition("finish", 2.0),
        State("resume",
              [Action("send", "ClientHelloResume"), Action("send", "ChangeCipherSpec"),
               Action("send", "Finished")])
        .add_transition("finish", 1.0),
        State("renego", [Action("send", "ClientHello"), Action("send", "Finished")])
        .add_transition("finish", 1.0),
        State("finish", [Action("send", "Alert")]),
    ]
    return StateModel("dtls-session", "start", states, data_models)
