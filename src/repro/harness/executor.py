"""Multiprocess campaign executor: the evaluation grid, fanned out.

The paper's evaluation is a grid of independent campaign cells — subject
x fuzzer x repetition — each fully determined by a seed. This module
runs that grid across a pool of worker processes without giving up the
bit-for-bit determinism of the serial path:

- :class:`CampaignSpec` is the picklable description of one cell (target
  name, pit, mode name + kwargs, :class:`CampaignConfig`). Live objects
  — engines, namespaces, targets — are reconstructed *inside* the
  worker from the registries, so nothing unpicklable crosses the
  process boundary.
- :class:`CampaignOutcome` is the slim, serializable result shipped
  back: the coverage time series, the deduplicated bug ledger, and
  per-instance counters. :meth:`CampaignOutcome.to_result` rebuilds a
  :class:`CampaignResult` (without live instances) so every downstream
  consumer of the serial API keeps working.
- :func:`execute_specs` schedules cells onto the generic task pool
  (:mod:`repro.harness.pool`): per-cell timeouts, bounded retries in a
  fresh worker, structured :class:`CellFailure` records instead of a
  hung pool, results ordered by spec index regardless of completion
  order.
- :class:`ResultCache` memoises successful outcomes on disk under
  ``.cmfuzz-cache/`` keyed by a stable content hash of the spec, so
  re-running an expensive grid after an unrelated edit is free. The
  cache directory is validated eagerly: an unwritable
  ``$CMFUZZ_CACHE_DIR`` raises
  :class:`~repro.errors.CacheUnavailableError` before any cell runs.

``workers=1`` short-circuits to an in-process loop with identical
results (the golden-equivalence suite pins this down).
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.cache import (
    DEFAULT_CACHE_DIR,
    FaultTolerantStore,
    canonical_payload,
    default_cache_dir,
    validate_cache_dir,
)
from repro.harness.campaign import CampaignConfig, CampaignResult, run_campaign
from repro.harness.pool import (
    CellFailure,
    CellResult,
    ExecutorError,
    Task,
    execute_tasks,
)
from repro.harness.stats import TimeSeries
from repro.harness.supervisor import SupervisorEvent
from repro.targets.faults import BugLedger, CrashReport
from repro.telemetry import NULL_TELEMETRY

__all__ = [
    "CACHE_VERSION",
    "DEFAULT_CACHE_DIR",
    "CampaignOutcome",
    "CampaignSpec",
    "CellFailure",
    "CellResult",
    "ExecutorError",
    "InstanceStats",
    "ResultCache",
    "default_cache_dir",
    "execute_specs",
    "outcomes",
    "results",
    "run_spec",
    "specs_for_repeated",
]

#: Bumped whenever the outcome layout or the key derivation changes;
#: stale cache entries from older versions are treated as misses.
#: 5: CampaignConfig grew the checkpoint/resume knobs.
#: 6: CampaignConfig grew the io-chaos knobs.
CACHE_VERSION = 6


# ---------------------------------------------------------------------------
# Specs and outcomes
# ---------------------------------------------------------------------------

#: Canonicalisation now lives in :mod:`repro.cache` (the checkpoint
#: campaign keys share it); the old private name keeps working.
_canonical = canonical_payload


@dataclass(frozen=True)
class CampaignSpec:
    """A picklable description of one experiment cell.

    Everything a worker needs to reconstruct the live campaign: the
    target and pit come from the registries by ``target`` name, the mode
    is instantiated as ``MODES[mode](**mode_kwargs)``, and ``config``
    carries the seed that makes the run deterministic.
    """

    target: str
    mode: str
    mode_kwargs: Dict[str, Any] = field(default_factory=dict)
    config: CampaignConfig = field(default_factory=CampaignConfig)

    def cache_key(self, runner: Optional[Callable] = None) -> str:
        """Stable content hash of this spec (and a non-default runner)."""
        payload = {
            "version": CACHE_VERSION,
            "target": self.target,
            "mode": self.mode,
            "mode_kwargs": _canonical(self.mode_kwargs),
            "config": _canonical(self.config),
            "runner": None if runner in (None, run_spec) else _canonical(runner),
        }
        digest = hashlib.sha256(
            json.dumps(payload, sort_keys=True).encode("utf-8")
        )
        return digest.hexdigest()


@dataclass(frozen=True)
class InstanceStats:
    """Per-instance counters surviving the process boundary."""

    index: int
    coverage: int
    restarts: int
    config_mutations: int
    dead: bool
    group: Tuple[str, ...]
    assignment: Tuple[Tuple[str, Any], ...]
    quarantined: bool = False
    hangs: int = 0


@dataclass
class CampaignOutcome:
    """The slim serializable form of a campaign's results.

    Carries everything the evaluation consumes — the coverage series,
    the deduplicated bug ledger, iteration counts, per-instance counters
    — and none of the live engine/namespace state a
    :class:`CampaignResult` drags along.
    """

    mode: str
    target: str
    coverage_points: List[Tuple[float, float]]
    bug_entries: List[Tuple[CrashReport, int]]
    instance_stats: List[InstanceStats]
    startup_conflicts: int = 0
    iterations: int = 0
    supervisor_events: List[SupervisorEvent] = dataclasses.field(
        default_factory=list)
    #: Telemetry snapshot of the worker's campaign (None when disabled).
    metrics: Optional[Dict[str, Any]] = None

    @classmethod
    def from_result(cls, result: CampaignResult) -> "CampaignOutcome":
        return cls(
            mode=result.mode,
            target=result.target,
            coverage_points=result.coverage.points(),
            bug_entries=result.bugs.snapshot(),
            instance_stats=[
                InstanceStats(
                    index=instance.index,
                    coverage=instance.coverage,
                    restarts=instance.restarts,
                    config_mutations=instance.config_mutations,
                    dead=instance.dead,
                    group=tuple(instance.bundle.group),
                    assignment=tuple(sorted(instance.bundle.assignment.items())),
                    quarantined=instance.quarantined,
                    hangs=instance.hangs,
                )
                for instance in result.instances
            ],
            startup_conflicts=result.startup_conflicts,
            iterations=result.iterations,
            supervisor_events=list(result.supervisor_events),
            metrics=result.metrics,
        )

    def to_result(self) -> CampaignResult:
        """Rebuild a :class:`CampaignResult` (live instances excepted)."""
        coverage = TimeSeries()
        for t, v in self.coverage_points:
            coverage.record(t, v)
        return CampaignResult(
            mode=self.mode,
            target=self.target,
            coverage=coverage,
            bugs=BugLedger.from_snapshot(self.bug_entries),
            instances=[],
            startup_conflicts=self.startup_conflicts,
            iterations=self.iterations,
            supervisor_events=list(self.supervisor_events),
            metrics=self.metrics,
        )

    @property
    def final_coverage(self) -> int:
        return int(self.coverage_points[-1][1]) if self.coverage_points else 0


def run_spec(spec: CampaignSpec) -> CampaignOutcome:
    """Reconstruct one cell's live objects and run it (the worker body).

    Checkpointing specs (``checkpoint_every`` set) always run with
    ``resume=True``: a completed campaign deletes its checkpoint
    stream, so leftover state only exists when a previous worker died
    mid-cell — and then the retry continues the partial cell instead of
    rerunning it from scratch.
    """
    from repro.parallel import create_mode
    from repro.targets.registry import get_target

    entry = get_target(spec.target)
    config = spec.config
    if config.checkpoint_every is not None and not config.resume:
        config = dataclasses.replace(config, resume=True)
    result = run_campaign(
        entry.target_cls,
        entry.state_model(),
        create_mode(spec.mode, **dict(spec.mode_kwargs)),
        config,
    )
    return CampaignOutcome.from_result(result)


def specs_for_repeated(
    target: str,
    mode: str,
    repetitions: int,
    config: Optional[CampaignConfig] = None,
    mode_kwargs: Optional[Dict[str, Any]] = None,
) -> List[CampaignSpec]:
    """The spec grid matching :func:`run_repeated`'s seed schedule."""
    base = config or CampaignConfig()
    return [
        CampaignSpec(
            target=target,
            mode=mode,
            mode_kwargs=dict(mode_kwargs or {}),
            config=dataclasses.replace(base, seed=base.seed + repetition * 101),
        )
        for repetition in range(repetitions)
    ]


# ---------------------------------------------------------------------------
# Cell results
# ---------------------------------------------------------------------------


def outcomes(cells: Sequence[CellResult]) -> List[CampaignOutcome]:
    """Extract outcomes in spec order, raising if any cell failed."""
    failed = [cell for cell in cells if not cell.ok]
    if failed:
        raise ExecutorError(failed)
    return [cell.outcome for cell in cells]


def results(cells: Sequence[CellResult]) -> List[CampaignResult]:
    """Outcomes rebuilt as :class:`CampaignResult`, in spec order."""
    return [outcome.to_result() for outcome in outcomes(cells)]


# ---------------------------------------------------------------------------
# On-disk result cache
# ---------------------------------------------------------------------------


class ResultCache:
    """Pickle-per-key outcome cache under a cache directory.

    The key is a content hash of the spec, so the only invalidation rule
    is the spec itself changing (or :data:`CACHE_VERSION` bumping);
    unrelated source edits never invalidate entries. Writes are atomic
    (temp file + rename) so parallel writers cannot tear an entry.

    The directory is validated at construction: an unwritable root
    raises :class:`~repro.errors.CacheUnavailableError` immediately,
    with a ``--no-cache`` hint, instead of an opaque ``OSError`` after
    hours of campaigning. Mid-run I/O goes through a
    :class:`~repro.cache.FaultTolerantStore` instead: transient errors
    are retried, persistent failure degrades to an in-memory store for
    the rest of the grid, and corrupt entries are quarantined.
    """

    def __init__(self, root: Optional[str] = None, telemetry=None,
                 injector=None):
        self.root = validate_cache_dir(root or default_cache_dir())
        self.store = FaultTolerantStore("result", telemetry=telemetry,
                                        injector=injector)

    def _path(self, key: str) -> str:
        return os.path.join(self.root, key + ".pkl")

    def get(self, key: str) -> Optional[CampaignOutcome]:
        payload = self.store.load(self._path(key))
        if not isinstance(payload, dict):
            return None
        if payload.get("version") != CACHE_VERSION or payload.get("key") != key:
            return None
        outcome = payload.get("outcome")
        return outcome if isinstance(outcome, CampaignOutcome) else None

    def put(self, key: str, outcome: CampaignOutcome) -> None:
        self.store.store(
            self._path(key),
            {"version": CACHE_VERSION, "key": key, "outcome": outcome},
        )


# ---------------------------------------------------------------------------
# The grid front-end over the generic pool
# ---------------------------------------------------------------------------


def execute_specs(
    specs: Iterable[CampaignSpec],
    workers: int = 1,
    runner: Optional[Callable[[CampaignSpec], CampaignOutcome]] = None,
    cache: bool = False,
    cache_dir: Optional[str] = None,
    timeout: Optional[float] = None,
    retries: int = 1,
    mp_context=None,
    telemetry=None,
    io_injector=None,
    backend: Optional[str] = None,
    coordinator: Optional[str] = None,
) -> List[CellResult]:
    """Run a grid of campaign cells, optionally across worker processes.

    Args:
        specs: The cells, in the order results should come back.
        workers: Max cells in flight. ``1`` runs in-process (identical
            results, no subprocesses, no timeout enforcement).
        runner: Cell body; defaults to :func:`run_spec`. Must be a
            picklable module-level callable for ``workers > 1``.
        cache: Memoise successful outcomes on disk.
        cache_dir: Cache directory (default ``.cmfuzz-cache/``).
        timeout: Per-cell wall-clock budget in seconds (pooled only); an
            expired worker is terminated and the cell recorded/retried.
        retries: How many times a failed cell is re-run in a fresh
            worker before its failure record becomes final.
        telemetry: Optional :class:`repro.telemetry.Telemetry` recording
            grid-level metrics: per-cell wall time
            (``executor.task_seconds``), cache hits, retries, failures.
        io_injector: Optional :class:`repro.faultplane.FaultInjector`
            exercising the grid's own I/O: result-cache reads/writes
            run under its retry/degrade policy and launched workers may
            be doomed to die and be re-leased.
        backend: ``"local"`` (this module's process pool, the default)
            or ``"fleet"`` (dispatch through the
            :mod:`repro.fleet` control plane). ``None`` consults
            ``$CMFUZZ_EXECUTOR_BACKEND``. The fleet fold is by spec
            index, so both backends return byte-identical grids.
        coordinator: Fleet backend only: a running coordinator's URL.
            Omitted, an ephemeral in-process fleet (coordinator +
            ``workers`` agent threads) runs the grid and tears down.

    Returns:
        One :class:`CellResult` per spec, ordered like ``specs``
        regardless of completion order.

    Raises:
        CacheUnavailableError: When ``cache`` is enabled but the cache
            directory cannot be created or written.
        ValueError: Unknown ``backend`` name.
    """
    spec_list = list(specs)
    backend = backend or os.environ.get("CMFUZZ_EXECUTOR_BACKEND") or "local"
    if backend == "fleet":
        from repro.fleet import run_specs_fleet

        return run_specs_fleet(
            spec_list, coordinator=coordinator, workers=workers,
            runner=runner, cache=cache, cache_dir=cache_dir,
            retries=retries, telemetry=telemetry, io_injector=io_injector,
        )
    if backend != "local":
        raise ValueError("unknown executor backend %r (expected 'local' "
                         "or 'fleet')" % backend)
    runner = runner or run_spec
    tele = telemetry or NULL_TELEMETRY
    store = ResultCache(cache_dir, telemetry=tele,
                        injector=io_injector) if cache else None
    cells: List[Optional[CellResult]] = [None] * len(spec_list)
    tele.counter("executor.cells").inc(len(spec_list))

    tasks: List[Task] = []
    for index, spec in enumerate(spec_list):
        if store is not None:
            key = spec.cache_key(runner)
            hit = store.get(key)
            if hit is not None:
                cells[index] = CellResult(
                    index=index, spec=spec, outcome=hit, from_cache=True,
                )
                tele.counter("executor.cache_hits").inc()
                continue
            tasks.append(Task(index=index, payload=spec, meta=key))
        else:
            tasks.append(Task(index=index, payload=spec))

    on_success = None
    if store is not None:
        on_success = lambda task, outcome: store.put(task.meta, outcome)  # noqa: E731

    for result in execute_tasks(
        tasks, runner, workers=workers, timeout=timeout, retries=retries,
        mp_context=mp_context, telemetry=tele, on_success=on_success,
        metric_prefix="executor", injector=io_injector,
    ):
        cells[result.index] = result

    for cell in cells:
        if cell is not None and cell.failure is not None:
            tele.counter("executor.failures", kind=cell.failure.kind).inc()
    return [cell for cell in cells if cell is not None]
