"""Multiprocess campaign executor: the evaluation grid, fanned out.

The paper's evaluation is a grid of independent campaign cells — subject
x fuzzer x repetition — each fully determined by a seed. This module
runs that grid across a pool of worker processes without giving up the
bit-for-bit determinism of the serial path:

- :class:`CampaignSpec` is the picklable description of one cell (target
  name, pit, mode name + kwargs, :class:`CampaignConfig`). Live objects
  — engines, namespaces, targets — are reconstructed *inside* the
  worker from the registries, so nothing unpicklable crosses the
  process boundary.
- :class:`CampaignOutcome` is the slim, serializable result shipped
  back: the coverage time series, the deduplicated bug ledger, and
  per-instance counters. :meth:`CampaignOutcome.to_result` rebuilds a
  :class:`CampaignResult` (without live instances) so every downstream
  consumer of the serial API keeps working.
- :func:`execute_specs` schedules cells onto one worker process per
  in-flight cell, applies per-cell timeouts, retries transient failures
  in a fresh worker, and converts worker crashes into structured
  :class:`CellFailure` records instead of a hung pool. Results come
  back ordered by spec index regardless of completion order.
- :class:`ResultCache` memoises successful outcomes on disk under
  ``.cmfuzz-cache/`` keyed by a stable content hash of the spec, so
  re-running an expensive grid after an unrelated edit is free.

``workers=1`` short-circuits to an in-process loop with identical
results (the golden-equivalence suite pins this down).
"""

from __future__ import annotations

import dataclasses
import enum
import hashlib
import json
import multiprocessing
import os
import pickle
import time
import traceback
from collections import deque
from dataclasses import dataclass, field
from multiprocessing import connection as mp_connection
from typing import Any, Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.errors import HarnessError
from repro.harness.campaign import CampaignConfig, CampaignResult, run_campaign
from repro.harness.stats import TimeSeries
from repro.harness.supervisor import SupervisorEvent
from repro.targets.faults import BugLedger, CrashReport
from repro.telemetry import NULL_TELEMETRY

#: Bumped whenever the outcome layout or the key derivation changes;
#: stale cache entries from older versions are treated as misses.
CACHE_VERSION = 3

#: Default on-disk cache location, relative to the working directory.
DEFAULT_CACHE_DIR = ".cmfuzz-cache"


def default_cache_dir() -> str:
    """The cache root: ``$CMFUZZ_CACHE_DIR`` or ``.cmfuzz-cache/``."""
    return os.environ.get("CMFUZZ_CACHE_DIR") or DEFAULT_CACHE_DIR


# ---------------------------------------------------------------------------
# Specs and outcomes
# ---------------------------------------------------------------------------


def _canonical(value: Any) -> Any:
    """Reduce ``value`` to a JSON-stable shape for cache-key hashing.

    Dict key order never matters (``json.dumps(sort_keys=True)`` on the
    stringified keys), callables hash by qualified name, dataclasses by
    field dict.
    """
    if value is None or isinstance(value, (str, int, float, bool)):
        return value
    if isinstance(value, enum.Enum):
        return [type(value).__name__, value.value]
    if isinstance(value, (list, tuple)):
        return [_canonical(v) for v in value]
    if isinstance(value, (set, frozenset)):
        return sorted(json.dumps(_canonical(v), sort_keys=True) for v in value)
    if isinstance(value, dict):
        return {str(k): _canonical(v) for k, v in value.items()}
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {
            f.name: _canonical(getattr(value, f.name))
            for f in dataclasses.fields(value)
        }
    if callable(value):
        return "%s:%s" % (
            getattr(value, "__module__", "?"),
            getattr(value, "__qualname__", repr(value)),
        )
    return repr(value)


@dataclass(frozen=True)
class CampaignSpec:
    """A picklable description of one experiment cell.

    Everything a worker needs to reconstruct the live campaign: the
    target and pit come from the registries by ``target`` name, the mode
    is instantiated as ``MODES[mode](**mode_kwargs)``, and ``config``
    carries the seed that makes the run deterministic.
    """

    target: str
    mode: str
    mode_kwargs: Dict[str, Any] = field(default_factory=dict)
    config: CampaignConfig = field(default_factory=CampaignConfig)

    def cache_key(self, runner: Optional[Callable] = None) -> str:
        """Stable content hash of this spec (and a non-default runner)."""
        payload = {
            "version": CACHE_VERSION,
            "target": self.target,
            "mode": self.mode,
            "mode_kwargs": _canonical(self.mode_kwargs),
            "config": _canonical(self.config),
            "runner": None if runner in (None, run_spec) else _canonical(runner),
        }
        digest = hashlib.sha256(
            json.dumps(payload, sort_keys=True).encode("utf-8")
        )
        return digest.hexdigest()


@dataclass(frozen=True)
class InstanceStats:
    """Per-instance counters surviving the process boundary."""

    index: int
    coverage: int
    restarts: int
    config_mutations: int
    dead: bool
    group: Tuple[str, ...]
    assignment: Tuple[Tuple[str, Any], ...]
    quarantined: bool = False
    hangs: int = 0


@dataclass
class CampaignOutcome:
    """The slim serializable form of a campaign's results.

    Carries everything the evaluation consumes — the coverage series,
    the deduplicated bug ledger, iteration counts, per-instance counters
    — and none of the live engine/namespace state a
    :class:`CampaignResult` drags along.
    """

    mode: str
    target: str
    coverage_points: List[Tuple[float, float]]
    bug_entries: List[Tuple[CrashReport, int]]
    instance_stats: List[InstanceStats]
    startup_conflicts: int = 0
    iterations: int = 0
    supervisor_events: List[SupervisorEvent] = dataclasses.field(
        default_factory=list)
    #: Telemetry snapshot of the worker's campaign (None when disabled).
    metrics: Optional[Dict[str, Any]] = None

    @classmethod
    def from_result(cls, result: CampaignResult) -> "CampaignOutcome":
        return cls(
            mode=result.mode,
            target=result.target,
            coverage_points=result.coverage.points(),
            bug_entries=result.bugs.snapshot(),
            instance_stats=[
                InstanceStats(
                    index=instance.index,
                    coverage=instance.coverage,
                    restarts=instance.restarts,
                    config_mutations=instance.config_mutations,
                    dead=instance.dead,
                    group=tuple(instance.bundle.group),
                    assignment=tuple(sorted(instance.bundle.assignment.items())),
                    quarantined=instance.quarantined,
                    hangs=instance.hangs,
                )
                for instance in result.instances
            ],
            startup_conflicts=result.startup_conflicts,
            iterations=result.iterations,
            supervisor_events=list(result.supervisor_events),
            metrics=result.metrics,
        )

    def to_result(self) -> CampaignResult:
        """Rebuild a :class:`CampaignResult` (live instances excepted)."""
        coverage = TimeSeries()
        for t, v in self.coverage_points:
            coverage.record(t, v)
        return CampaignResult(
            mode=self.mode,
            target=self.target,
            coverage=coverage,
            bugs=BugLedger.from_snapshot(self.bug_entries),
            instances=[],
            startup_conflicts=self.startup_conflicts,
            iterations=self.iterations,
            supervisor_events=list(self.supervisor_events),
            metrics=self.metrics,
        )

    @property
    def final_coverage(self) -> int:
        return int(self.coverage_points[-1][1]) if self.coverage_points else 0


def run_spec(spec: CampaignSpec) -> CampaignOutcome:
    """Reconstruct one cell's live objects and run it (the worker body)."""
    from repro.parallel import MODES
    from repro.pits import pit_registry
    from repro.targets import target_registry

    targets = target_registry()
    if spec.target not in targets:
        raise KeyError("unknown target %r" % spec.target)
    if spec.mode not in MODES:
        raise KeyError("unknown mode %r" % spec.mode)
    result = run_campaign(
        targets[spec.target],
        pit_registry()[spec.target](),
        MODES[spec.mode](**dict(spec.mode_kwargs)),
        spec.config,
    )
    return CampaignOutcome.from_result(result)


def specs_for_repeated(
    target: str,
    mode: str,
    repetitions: int,
    config: Optional[CampaignConfig] = None,
    mode_kwargs: Optional[Dict[str, Any]] = None,
) -> List[CampaignSpec]:
    """The spec grid matching :func:`run_repeated`'s seed schedule."""
    base = config or CampaignConfig()
    return [
        CampaignSpec(
            target=target,
            mode=mode,
            mode_kwargs=dict(mode_kwargs or {}),
            config=dataclasses.replace(base, seed=base.seed + repetition * 101),
        )
        for repetition in range(repetitions)
    ]


# ---------------------------------------------------------------------------
# Failure records and cell results
# ---------------------------------------------------------------------------


@dataclass
class CellFailure:
    """A structured record of why a cell could not produce an outcome."""

    kind: str  # "exception" | "timeout" | "worker-died"
    message: str
    traceback: str = ""
    exitcode: Optional[int] = None

    def __str__(self) -> str:
        return "[%s] %s" % (self.kind, self.message)


@dataclass
class CellResult:
    """One cell's execution record: outcome or failure, plus provenance."""

    index: int
    spec: CampaignSpec
    outcome: Optional[CampaignOutcome] = None
    failure: Optional[CellFailure] = None
    from_cache: bool = False
    attempts: int = 0

    @property
    def ok(self) -> bool:
        return self.outcome is not None


class ExecutorError(HarnessError):
    """Raised when a grid finished with failed cells."""

    def __init__(self, failed: Sequence[CellResult]):
        self.failed = list(failed)
        details = "; ".join(
            "cell %d (%s/%s): %s" % (c.index, c.spec.target, c.spec.mode, c.failure)
            for c in self.failed
        )
        super().__init__("%d cell(s) failed: %s" % (len(self.failed), details))


def outcomes(cells: Sequence[CellResult]) -> List[CampaignOutcome]:
    """Extract outcomes in spec order, raising if any cell failed."""
    failed = [cell for cell in cells if not cell.ok]
    if failed:
        raise ExecutorError(failed)
    return [cell.outcome for cell in cells]


def results(cells: Sequence[CellResult]) -> List[CampaignResult]:
    """Outcomes rebuilt as :class:`CampaignResult`, in spec order."""
    return [outcome.to_result() for outcome in outcomes(cells)]


# ---------------------------------------------------------------------------
# On-disk result cache
# ---------------------------------------------------------------------------


class ResultCache:
    """Pickle-per-key outcome cache under a cache directory.

    The key is a content hash of the spec, so the only invalidation rule
    is the spec itself changing (or :data:`CACHE_VERSION` bumping);
    unrelated source edits never invalidate entries. Writes are atomic
    (temp file + rename) so parallel writers cannot tear an entry.
    """

    def __init__(self, root: Optional[str] = None):
        self.root = root or default_cache_dir()

    def _path(self, key: str) -> str:
        return os.path.join(self.root, key + ".pkl")

    def get(self, key: str) -> Optional[CampaignOutcome]:
        try:
            with open(self._path(key), "rb") as handle:
                payload = pickle.load(handle)
        except (OSError, pickle.PickleError, EOFError, AttributeError,
                ImportError, IndexError):
            return None
        if not isinstance(payload, dict):
            return None
        if payload.get("version") != CACHE_VERSION or payload.get("key") != key:
            return None
        outcome = payload.get("outcome")
        return outcome if isinstance(outcome, CampaignOutcome) else None

    def put(self, key: str, outcome: CampaignOutcome) -> None:
        os.makedirs(self.root, exist_ok=True)
        path = self._path(key)
        temp = "%s.tmp.%d" % (path, os.getpid())
        with open(temp, "wb") as handle:
            pickle.dump(
                {"version": CACHE_VERSION, "key": key, "outcome": outcome},
                handle,
                protocol=pickle.HIGHEST_PROTOCOL,
            )
        os.replace(temp, path)


# ---------------------------------------------------------------------------
# The pool
# ---------------------------------------------------------------------------


def _cell_entry(runner: Callable, spec: CampaignSpec, conn) -> None:
    """Worker process entry point: run the cell, ship one message back."""
    try:
        outcome = runner(spec)
        conn.send(("ok", outcome))
    except BaseException as exc:  # noqa: BLE001 - converted to a record
        try:
            conn.send(("error", type(exc).__name__, str(exc),
                       traceback.format_exc()))
        except Exception:
            pass
    finally:
        try:
            conn.close()
        except Exception:
            pass


@dataclass
class _Cell:
    index: int
    spec: CampaignSpec
    key: Optional[str]
    attempts: int = 0


@dataclass
class _Running:
    cell: _Cell
    process: Any
    conn: Any
    deadline: Optional[float]
    started: float = 0.0


def _default_context():
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context("fork" if "fork" in methods else "spawn")


def execute_specs(
    specs: Iterable[CampaignSpec],
    workers: int = 1,
    runner: Optional[Callable[[CampaignSpec], CampaignOutcome]] = None,
    cache: bool = False,
    cache_dir: Optional[str] = None,
    timeout: Optional[float] = None,
    retries: int = 1,
    mp_context=None,
    telemetry=None,
) -> List[CellResult]:
    """Run a grid of campaign cells, optionally across worker processes.

    Args:
        specs: The cells, in the order results should come back.
        workers: Max cells in flight. ``1`` runs in-process (identical
            results, no subprocesses, no timeout enforcement).
        runner: Cell body; defaults to :func:`run_spec`. Must be a
            picklable module-level callable for ``workers > 1``.
        cache: Memoise successful outcomes on disk.
        cache_dir: Cache directory (default ``.cmfuzz-cache/``).
        timeout: Per-cell wall-clock budget in seconds (pooled only); an
            expired worker is terminated and the cell recorded/retried.
        retries: How many times a failed cell is re-run in a fresh
            worker before its failure record becomes final.
        telemetry: Optional :class:`repro.telemetry.Telemetry` recording
            grid-level metrics: per-cell wall time
            (``executor.cell_seconds``), cache hits, retries, failures.

    Returns:
        One :class:`CellResult` per spec, ordered like ``specs``
        regardless of completion order.
    """
    spec_list = list(specs)
    runner = runner or run_spec
    store = ResultCache(cache_dir) if cache else None
    tele = telemetry or NULL_TELEMETRY
    cells: List[Optional[CellResult]] = [None] * len(spec_list)
    tele.counter("executor.cells").inc(len(spec_list))

    pending: deque = deque()
    for index, spec in enumerate(spec_list):
        key = spec.cache_key(runner) if store else None
        if store is not None:
            hit = store.get(key)
            if hit is not None:
                cells[index] = CellResult(
                    index=index, spec=spec, outcome=hit, from_cache=True,
                )
                tele.counter("executor.cache_hits").inc()
                continue
        pending.append(_Cell(index=index, spec=spec, key=key))

    if workers <= 1:
        for cell in pending:
            cells[cell.index] = _run_inline(cell, runner, retries, store, tele)
    else:
        _run_pool(pending, cells, workers, runner, retries, timeout, store,
                  mp_context or _default_context(), tele)
    for cell in cells:
        if cell is not None and cell.failure is not None:
            tele.counter("executor.failures", kind=cell.failure.kind).inc()
    return [cell for cell in cells if cell is not None]


def _finish_ok(cell: _Cell, outcome: CampaignOutcome,
               store: Optional[ResultCache]) -> CellResult:
    if store is not None and cell.key is not None:
        store.put(cell.key, outcome)
    return CellResult(
        index=cell.index, spec=cell.spec, outcome=outcome, attempts=cell.attempts,
    )


def _run_inline(cell: _Cell, runner: Callable, retries: int,
                store: Optional[ResultCache],
                tele=NULL_TELEMETRY) -> CellResult:
    """The ``workers=1`` path: same retry contract, no subprocesses."""
    failure = None
    while cell.attempts <= retries:
        if cell.attempts:
            tele.counter("executor.retries").inc()
        cell.attempts += 1
        started = time.monotonic()
        try:
            outcome = runner(cell.spec)
        except Exception as exc:
            tele.histogram("executor.cell_seconds").observe(
                time.monotonic() - started)
            failure = CellFailure(
                kind="exception",
                message="%s: %s" % (type(exc).__name__, exc),
                traceback=traceback.format_exc(),
            )
        else:
            tele.histogram("executor.cell_seconds").observe(
                time.monotonic() - started)
            return _finish_ok(cell, outcome, store)
    return CellResult(
        index=cell.index, spec=cell.spec, failure=failure, attempts=cell.attempts,
    )


def _run_pool(pending, cells, workers, runner, retries, timeout, store, ctx,
              tele=NULL_TELEMETRY):
    running: Dict[Any, _Running] = {}

    def launch(cell: _Cell) -> None:
        if cell.attempts:
            tele.counter("executor.retries").inc()
        cell.attempts += 1
        parent_conn, child_conn = ctx.Pipe(duplex=False)
        process = ctx.Process(
            target=_cell_entry, args=(runner, cell.spec, child_conn), daemon=True,
        )
        process.start()
        child_conn.close()
        started = time.monotonic()
        deadline = (started + timeout) if timeout else None
        running[parent_conn] = _Running(
            cell=cell, process=process, conn=parent_conn, deadline=deadline,
            started=started,
        )

    def settle(run: _Running, failure: CellFailure) -> None:
        """Record a failure or requeue the cell for a fresh worker."""
        tele.histogram("executor.cell_seconds").observe(
            time.monotonic() - run.started)
        if run.cell.attempts <= retries:
            pending.append(run.cell)
        else:
            cells[run.cell.index] = CellResult(
                index=run.cell.index, spec=run.cell.spec,
                failure=failure, attempts=run.cell.attempts,
            )

    try:
        while pending or running:
            while pending and len(running) < workers:
                launch(pending.popleft())

            wait_timeout = None
            deadlines = [r.deadline for r in running.values()
                         if r.deadline is not None]
            if deadlines:
                wait_timeout = max(0.0, min(deadlines) - time.monotonic())
            ready = mp_connection.wait(list(running), timeout=wait_timeout)

            for conn in ready:
                run = running.pop(conn)
                try:
                    message = conn.recv()
                except (EOFError, OSError):
                    message = None
                conn.close()
                run.process.join()
                if message is None:
                    settle(run, CellFailure(
                        kind="worker-died",
                        message="worker exited without a result (exitcode %s)"
                                % run.process.exitcode,
                        exitcode=run.process.exitcode,
                    ))
                elif message[0] == "ok":
                    tele.histogram("executor.cell_seconds").observe(
                        time.monotonic() - run.started)
                    cells[run.cell.index] = _finish_ok(run.cell, message[1], store)
                else:
                    _, name, text, trace = message
                    settle(run, CellFailure(
                        kind="exception",
                        message="%s: %s" % (name, text),
                        traceback=trace,
                    ))

            now = time.monotonic()
            for conn in [c for c, r in running.items()
                         if r.deadline is not None and now >= r.deadline]:
                run = running.pop(conn)
                _terminate(run.process)
                conn.close()
                settle(run, CellFailure(
                    kind="timeout",
                    message="cell exceeded the %.1fs budget" % timeout,
                ))
    finally:
        for run in running.values():
            _terminate(run.process)
            run.conn.close()


def _terminate(process) -> None:
    process.terminate()
    process.join(5.0)
    if process.is_alive():  # pragma: no cover - stuck in uninterruptible state
        process.kill()
        process.join(5.0)
