"""High-level experiment orchestration: the paper's protocols as APIs.

Wraps the campaign runner into the exact experimental protocols of the
evaluation section, so benches, the CLI and notebooks share one
implementation. Campaign execution goes through the public facade —
:func:`repro.api.compare_modes` — which fans cells across workers and
memoises outcomes on disk.

The paper's tables map onto it directly: one Table-I row is
``compare_modes(subject)``; Table II merges
``compare_modes(...).merged_bugs()`` ledgers across subjects; one
Figure-4 panel feeds a :class:`SubjectComparison` to
:func:`coverage_panels`.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence

from repro.harness.campaign import CampaignConfig, CampaignResult, run_repeated
from repro.harness.executor import execute_specs, results, specs_for_repeated
from repro.harness.stats import TimeSeries, mean, speedup
from repro.harness.supervisor import SupervisorPolicy, event_counts
from repro.parallel import MODES
from repro.targets.chaos import ChaosPolicy
from repro.targets.registry import get_target
from repro.targets.faults import BugLedger

DEFAULT_FUZZERS = ("cmfuzz", "peach", "spfuzz")


@dataclass
class SubjectComparison:
    """All repetitions for one subject across fuzzers, plus aggregates."""

    subject: str
    results: Dict[str, List[CampaignResult]]

    def mean_coverage(self, fuzzer: str) -> float:
        return mean([r.final_coverage for r in self.results[fuzzer]])

    def improvement_over(self, baseline: str, contender: str = "cmfuzz") -> float:
        base = self.mean_coverage(baseline)
        if base <= 0:
            return 0.0
        return 100.0 * (self.mean_coverage(contender) - base) / base

    def speedup_over(self, baseline: str, contender: str = "cmfuzz") -> float:
        pairs = zip(self.results[baseline], self.results[contender])
        return mean([speedup(b.coverage, c.coverage) for b, c in pairs])

    def merged_bugs(self, fuzzer: str = "cmfuzz") -> BugLedger:
        merged = BugLedger()
        for result in self.results[fuzzer]:
            merged.merge(result.bugs)
        return merged


def _run_fuzzers(
    subject: str,
    fuzzers: Sequence[str],
    repetitions: int,
    config: Optional[CampaignConfig],
    mode_factories: Optional[Dict[str, Callable]] = None,
    workers: int = 1,
    cache: bool = False,
    cache_dir: Optional[str] = None,
    backend: Optional[str] = None,
    coordinator: Optional[str] = None,
) -> SubjectComparison:
    entry = get_target(subject)
    factories = mode_factories or {}
    for fuzzer in fuzzers:
        if fuzzer not in factories and fuzzer not in MODES:
            raise KeyError(fuzzer)

    # Registry fuzzers go through the executor as picklable specs (the
    # workers=1 path is in-process and bit-identical to run_repeated);
    # custom factories cannot cross a process boundary and stay serial.
    spec_fuzzers = [f for f in fuzzers if f not in factories]
    by_fuzzer: Dict[str, List[CampaignResult]] = {}
    if spec_fuzzers:
        specs = []
        for fuzzer in spec_fuzzers:
            specs.extend(specs_for_repeated(subject, fuzzer, repetitions, config))
        campaigns = results(execute_specs(
            specs, workers=workers, cache=cache, cache_dir=cache_dir,
            backend=backend, coordinator=coordinator,
        ))
        for position, fuzzer in enumerate(spec_fuzzers):
            start = position * repetitions
            by_fuzzer[fuzzer] = campaigns[start:start + repetitions]
    for fuzzer in fuzzers:
        if fuzzer in factories:
            by_fuzzer[fuzzer] = run_repeated(
                entry.target_cls, entry.state_model, factories[fuzzer],
                repetitions=repetitions, config=config,
            )
    return SubjectComparison(
        subject=subject, results={f: by_fuzzer[f] for f in fuzzers},
    )


@dataclass
class ResilienceCell:
    """One (chaos level, fuzzer) cell of the resilience experiment."""

    level: float
    fuzzer: str
    results: List[CampaignResult]

    @property
    def mean_coverage(self) -> float:
        return mean([r.final_coverage for r in self.results])

    @property
    def supervisor_event_counts(self) -> Dict[str, int]:
        merged: Dict[str, int] = {}
        for result in self.results:
            for kind, count in event_counts(result.supervisor_events).items():
                merged[kind] = merged.get(kind, 0) + count
        return merged


def chaos_config(config: CampaignConfig, level: float,
                 chaos_seed: int = 0) -> CampaignConfig:
    """Derive a chaos-enabled copy of ``config`` for one chaos level."""
    if level <= 0.0:
        return config
    return dataclasses.replace(
        config,
        chaos=ChaosPolicy.from_level(level),
        chaos_seed=chaos_seed,
        supervisor=SupervisorPolicy.for_chaos(),
    )


def resilience_experiment(
    subject: str,
    chaos_levels: Sequence[float] = (0.0, 0.15, 0.3),
    fuzzers: Sequence[str] = DEFAULT_FUZZERS,
    repetitions: int = 2,
    config: Optional[CampaignConfig] = None,
    chaos_seed: int = 0,
    workers: int = 1,
    cache: bool = False,
    cache_dir: Optional[str] = None,
) -> Dict[float, Dict[str, ResilienceCell]]:
    """Coverage retention under rising chaos levels.

    Runs every fuzzer at every chaos level (level 0 is the chaos-free
    baseline retention is measured against) and returns the grid as
    ``{level: {fuzzer: ResilienceCell}}``. Use
    :func:`retention` to compare a cell against its baseline.
    """
    from repro.api import compare_modes

    base = config or CampaignConfig()
    grid: Dict[float, Dict[str, ResilienceCell]] = {}
    for level in chaos_levels:
        level_config = chaos_config(base, level, chaos_seed=chaos_seed)
        comparison = compare_modes(subject, modes=fuzzers,
                                   repetitions=repetitions,
                                   config=level_config, workers=workers,
                                   cache=cache, cache_dir=cache_dir)
        grid[level] = {
            fuzzer: ResilienceCell(level=level, fuzzer=fuzzer,
                                   results=comparison.results[fuzzer])
            for fuzzer in fuzzers
        }
    return grid


def retention(grid: Dict[float, Dict[str, "ResilienceCell"]],
              level: float, fuzzer: str) -> float:
    """Final coverage at ``level`` as a fraction of the chaos-free run."""
    baseline = grid[0.0][fuzzer].mean_coverage
    if baseline <= 0:
        return 0.0
    return grid[level][fuzzer].mean_coverage / baseline


def coverage_panels(
    comparison: SubjectComparison,
    horizon: float,
    grid_step: float = 3600.0,
) -> Dict[str, TimeSeries]:
    """Average each fuzzer's coverage series over a regular time grid."""
    panels: Dict[str, TimeSeries] = {}
    for fuzzer, results in comparison.results.items():
        averaged = TimeSeries()
        t = 0.0
        while t <= horizon + 1e-9:
            averaged.record(t, mean([r.coverage.value_at(t) for r in results]))
            t += grid_step
        panels[fuzzer] = averaged
    return panels
