"""A generic bounded process pool with timeouts, retries and failure records.

Extracted from the campaign executor so any picklable fan-out — campaign
cells, relation-probe batches — shares one battle-tested scheduling core:

- :class:`Task` wraps one unit of work: a picklable ``payload`` handed to
  the runner, the ``index`` results are keyed by, optional caller
  ``meta`` (e.g. a cache key) and an optional per-task ``timeout``
  overriding the pool-wide budget.
- :func:`execute_tasks` schedules tasks onto one worker process per
  in-flight task, applies per-task deadlines, retries failed tasks in a
  fresh worker and converts worker crashes into structured
  :class:`CellFailure` records instead of a hung pool. Results come back
  ordered like the input regardless of completion order.
- ``workers=1`` short-circuits to an in-process loop with the identical
  retry contract (and no timeout enforcement).

The campaign-specific layers — spec construction, outcome caching —
stay in :mod:`repro.harness.executor`; the probe fan-out lives in
:mod:`repro.core.probes`.
"""

from __future__ import annotations

import multiprocessing
import os
import pickle
import time
import traceback
from collections import deque
from dataclasses import dataclass, field
from multiprocessing import connection as mp_connection
from typing import Any, Callable, Dict, List, Optional, Sequence

from repro.errors import CampaignInterrupted, HarnessError
from repro.faultplane import FAULT_WORKER_DEATH
from repro.telemetry import NULL_TELEMETRY

#: Cap on injected deaths per task, so an io-chaos level of 1.0 cannot
#: doom every relaunch forever and livelock the pool.
_MAX_INJECTED_DEATHS = 3

#: What ``Connection.send`` can raise inside a worker (mirrors the
#: concrete-set treatment of ``UNPICKLE_ERRORS`` in :mod:`repro.cache`):
#: OSError/BrokenPipeError when the parent already closed or broke the
#: pipe, ValueError for a connection closed on this side, and
#: PicklingError/TypeError/AttributeError when the payload (e.g. an
#: exception holding unpicklable state) refuses to pickle. Anything else
#: is a real bug and must surface.
_PIPE_SEND_ERRORS = (OSError, ValueError, pickle.PicklingError,
                     TypeError, AttributeError)

#: What ``Connection.close`` can raise: only OS-level failures on an
#: already-broken or double-closed handle.
_PIPE_CLOSE_ERRORS = (OSError,)


@dataclass
class CellFailure:
    """A structured record of why a task could not produce a result."""

    kind: str  # "exception" | "timeout" | "worker-died"
    message: str
    traceback: str = ""
    exitcode: Optional[int] = None

    def __str__(self) -> str:
        return "[%s] %s" % (self.kind, self.message)


@dataclass
class CellResult:
    """One task's execution record: outcome or failure, plus provenance."""

    index: int
    spec: Any
    outcome: Optional[Any] = None
    failure: Optional[CellFailure] = None
    from_cache: bool = False
    attempts: int = 0

    @property
    def ok(self) -> bool:
        return self.outcome is not None


def _describe_spec(spec: Any) -> str:
    target = getattr(spec, "target", None)
    mode = getattr(spec, "mode", None)
    if target is not None and mode is not None:
        return "%s/%s" % (target, mode)
    if target is not None:
        return str(target)
    return type(spec).__name__


class ExecutorError(HarnessError):
    """Raised when a grid finished with failed cells."""

    def __init__(self, failed: Sequence[CellResult]):
        self.failed = list(failed)
        details = "; ".join(
            "cell %d (%s): %s" % (c.index, _describe_spec(c.spec), c.failure)
            for c in self.failed
        )
        super().__init__("%d cell(s) failed: %s" % (len(self.failed), details))


@dataclass
class Task:
    """One unit of pool work.

    Attributes:
        index: The slot results are keyed by (callers own the numbering).
        payload: The picklable argument handed to the runner.
        meta: Opaque caller bookkeeping (e.g. a cache key); never crosses
            the process boundary.
        timeout: Per-task wall-clock budget overriding the pool default
            (batched tasks scale their deadline with batch size).
        attempts: Internal retry counter.
    """

    index: int
    payload: Any
    meta: Any = None
    timeout: Optional[float] = None
    attempts: int = field(default=0, repr=False)


def _task_entry(runner: Callable, payload: Any, conn) -> None:
    """Worker process entry point: run the task, ship one message back."""
    try:
        outcome = runner(payload)
        conn.send(("ok", outcome))
    except BaseException as exc:  # noqa: BLE001 - converted to a record
        try:
            conn.send(("error", type(exc).__name__, str(exc),
                       traceback.format_exc()))
        except _PIPE_SEND_ERRORS:
            # Unreportable failure (pipe gone or record unpicklable):
            # die silently; the parent records "worker-died".
            pass
    finally:
        try:
            conn.close()
        except _PIPE_CLOSE_ERRORS:
            # Broken/already-closed pipe; the process is exiting anyway.
            pass


def _doomed_entry(conn) -> None:
    """Entry point for a fault-plane-doomed worker: die without a result.

    ``os._exit`` skips every cleanup hook, which is the point — the
    parent must observe exactly what a segfaulting or OOM-killed worker
    looks like: a closed pipe and a nonzero exitcode.
    """
    try:
        conn.close()
    except _PIPE_CLOSE_ERRORS:
        # Broken/already-closed pipe; the doomed exit must proceed.
        pass
    os._exit(173)


@dataclass
class _Running:
    task: Task
    process: Any
    conn: Any
    deadline: Optional[float]
    budget: Optional[float]
    started: float = 0.0
    injected: bool = False


def default_context():
    """Fork when available (cheap, inherits the import state), else spawn."""
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context("fork" if "fork" in methods else "spawn")


def in_daemon_worker() -> bool:
    """True inside a daemonic pool worker, which cannot spawn children."""
    return multiprocessing.current_process().daemon


def execute_tasks(
    tasks: Sequence[Task],
    runner: Callable[[Any], Any],
    workers: int = 1,
    timeout: Optional[float] = None,
    retries: int = 1,
    mp_context=None,
    telemetry=None,
    on_success: Optional[Callable[[Task, Any], None]] = None,
    metric_prefix: str = "executor",
    injector=None,
) -> List[CellResult]:
    """Run tasks, optionally across worker processes.

    Args:
        tasks: The work items, in the order results should come back.
        runner: Task body mapping ``task.payload`` to a result. Must be a
            picklable module-level callable for ``workers > 1``.
        workers: Max tasks in flight. ``1`` runs in-process (identical
            results, no subprocesses, no timeout enforcement).
        timeout: Default per-task wall-clock budget in seconds (pooled
            only); ``Task.timeout`` overrides it per task.
        retries: How many times a failed task is re-run in a fresh worker
            before its failure record becomes final.
        telemetry: Optional :class:`repro.telemetry.Telemetry`; records
            ``<prefix>.task_seconds`` and ``<prefix>.retries``.
        on_success: Invoked as ``on_success(task, outcome)`` before the
            success record is built (cache writes hook in here).
        metric_prefix: Namespace for the pool's telemetry instruments.
        injector: Optional :class:`repro.faultplane.FaultInjector`; an
            enabled plan may doom a launched worker to die before
            shipping its result. The pool's policy is lease-style:
            an injected death is respawned and re-leased without
            charging the retry budget or the pool metrics, so the
            exported counters never see the fault plane's weather.
            Ignored on the ``workers=1`` in-process path (there is no
            worker to kill).

    Returns:
        One :class:`CellResult` per task, ordered like ``tasks``
        regardless of completion order, each carrying the task's
        ``index``.
    """
    tele = telemetry or NULL_TELEMETRY
    slots: Dict[int, CellResult] = {}
    pending: deque = deque(tasks)
    for task in pending:
        task.attempts = 0

    if workers <= 1:
        for task in pending:
            slots[id(task)] = _run_inline(task, runner, retries, on_success,
                                          tele, metric_prefix)
    else:
        _run_pool(pending, slots, workers, runner, retries, timeout,
                  on_success, mp_context or default_context(), tele,
                  metric_prefix, injector)
    return [slots[id(task)] for task in tasks]


def _finish_ok(task: Task, outcome: Any,
               on_success: Optional[Callable]) -> CellResult:
    if on_success is not None:
        on_success(task, outcome)
    return CellResult(
        index=task.index, spec=task.payload, outcome=outcome,
        attempts=task.attempts,
    )


def _run_inline(task: Task, runner: Callable, retries: int,
                on_success: Optional[Callable], tele,
                metric_prefix: str) -> CellResult:
    """The ``workers=1`` path: same retry contract, no subprocesses."""
    failure = None
    while task.attempts <= retries:
        if task.attempts:
            tele.counter(metric_prefix + ".retries").inc()
        task.attempts += 1
        started = time.monotonic()
        try:
            outcome = runner(task.payload)
        except CampaignInterrupted:
            # An operator-initiated stop (SIGTERM/SIGINT with
            # checkpointing): retrying in-process would immediately
            # resume the campaign the operator is trying to stop, so
            # the interrupt propagates to the caller instead.
            raise
        except Exception as exc:
            tele.histogram(metric_prefix + ".task_seconds").observe(
                time.monotonic() - started)
            failure = CellFailure(
                kind="exception",
                message="%s: %s" % (type(exc).__name__, exc),
                traceback=traceback.format_exc(),
            )
        else:
            tele.histogram(metric_prefix + ".task_seconds").observe(
                time.monotonic() - started)
            return _finish_ok(task, outcome, on_success)
    return CellResult(
        index=task.index, spec=task.payload, failure=failure,
        attempts=task.attempts,
    )


def _run_pool(pending, slots, workers, runner, retries, timeout,
              on_success, ctx, tele, metric_prefix, injector=None):
    running: Dict[Any, _Running] = {}
    doomed_counts: Dict[int, int] = {}

    def launch(task: Task) -> None:
        if task.attempts:
            tele.counter(metric_prefix + ".retries").inc()
        task.attempts += 1
        doomed = False
        if injector is not None and injector.enabled and \
                doomed_counts.get(id(task), 0) < _MAX_INJECTED_DEATHS:
            doomed = injector.fault_for(
                "pool.worker", kinds=(FAULT_WORKER_DEATH,)) is not None
            if doomed:
                doomed_counts[id(task)] = doomed_counts.get(id(task), 0) + 1
        parent_conn, child_conn = ctx.Pipe(duplex=False)
        process = ctx.Process(
            target=_doomed_entry if doomed else _task_entry,
            args=(child_conn,) if doomed
            else (runner, task.payload, child_conn),
            daemon=True,
        )
        process.start()
        child_conn.close()
        started = time.monotonic()
        budget = task.timeout if task.timeout is not None else timeout
        deadline = (started + budget) if budget else None
        running[parent_conn] = _Running(
            task=task, process=process, conn=parent_conn, deadline=deadline,
            budget=budget, started=started, injected=doomed,
        )

    def settle(run: _Running, failure: CellFailure) -> None:
        """Record a failure or requeue the task for a fresh worker."""
        if run.injected:
            # An injected worker death re-leases the cell to a fresh
            # worker: the attempt is refunded and neither the retry
            # counter nor the task_seconds histogram observes it, so
            # exported metrics stay identical to the fault-free run.
            run.task.attempts -= 1
            pending.append(run.task)
            return
        tele.histogram(metric_prefix + ".task_seconds").observe(
            time.monotonic() - run.started)
        if run.task.attempts <= retries:
            pending.append(run.task)
        else:
            slots[id(run.task)] = CellResult(
                index=run.task.index, spec=run.task.payload,
                failure=failure, attempts=run.task.attempts,
            )

    try:
        while pending or running:
            while pending and len(running) < workers:
                launch(pending.popleft())

            wait_timeout = None
            deadlines = [r.deadline for r in running.values()
                         if r.deadline is not None]
            if deadlines:
                wait_timeout = max(0.0, min(deadlines) - time.monotonic())
            ready = mp_connection.wait(list(running), timeout=wait_timeout)

            for conn in ready:
                run = running.pop(conn)
                try:
                    message = conn.recv()
                except (EOFError, OSError):
                    message = None
                conn.close()
                run.process.join()
                if message is None:
                    settle(run, CellFailure(
                        kind="worker-died",
                        message="worker exited without a result (exitcode %s)"
                                % run.process.exitcode,
                        exitcode=run.process.exitcode,
                    ))
                elif message[0] == "ok":
                    tele.histogram(metric_prefix + ".task_seconds").observe(
                        time.monotonic() - run.started)
                    slots[id(run.task)] = _finish_ok(
                        run.task, message[1], on_success)
                else:
                    _, name, text, trace = message
                    settle(run, CellFailure(
                        kind="exception",
                        message="%s: %s" % (name, text),
                        traceback=trace,
                    ))

            now = time.monotonic()
            for conn in [c for c, r in running.items()
                         if r.deadline is not None and now >= r.deadline]:
                run = running.pop(conn)
                _terminate(run.process)
                conn.close()
                settle(run, CellFailure(
                    kind="timeout",
                    message="task exceeded the %.1fs budget" % run.budget,
                ))
    finally:
        for run in running.values():
            _terminate(run.process)
            run.conn.close()


def _terminate(process) -> None:
    process.terminate()
    process.join(5.0)
    if process.is_alive():  # pragma: no cover - stuck in uninterruptible state
        process.kill()
        process.join(5.0)
