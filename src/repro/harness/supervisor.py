"""Instance supervision: backoff, quarantine, revival and watchdogs.

The campaign loop used to mark an instance permanently dead after a
single failed restart, silently forfeiting that instance's configuration
group for the rest of the run. The supervisor replaces that ad-hoc
handling with a proper lifecycle, all in deterministic simulated time::

    running --crash--> restarting --success--> running
                          | failure
                          v
                       backoff (exponential delay + seeded jitter)
                          | budget exhausted within window
                          v
                     quarantined --revival probe ok--> running (revived)
                          | max probes failed
                          v
                       given-up (dead)

Two watchdogs feed the same machinery: consecutive hangs (send
timeouts, charged via :attr:`CostModel.hang_timeout`) and "dead air"
(iterations with traffic but no responses and no coverage — a silently
dead target). Every transition is recorded as a
:class:`SupervisorEvent` carried on the campaign result.

Quarantine and revival invoke the parallel mode's
``on_instance_lost`` / ``on_instance_revived`` hooks so schedulers can
reallocate the lost instance's share of the model space (CMFuzz moves
its entity group to survivors; SPFuzz redistributes its state paths).
"""

from __future__ import annotations

import enum
import random
from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Sequence

from repro.errors import StartupError, TargetHang
from repro.parallel.instance import FuzzingInstance
from repro.targets.faults import SanitizerFault
from repro.telemetry import NULL_TELEMETRY


@dataclass(frozen=True)
class SupervisorPolicy:
    """Knobs for the supervision state machine (simulated seconds)."""

    #: First restart-retry delay after a failed restart.
    backoff_base: float = 120.0
    #: Multiplier applied per consecutive failure.
    backoff_factor: float = 2.0
    #: Ceiling on a single backoff delay.
    backoff_max: float = 3840.0
    #: Deterministic jitter fraction (delay scaled by 1 +/- jitter).
    backoff_jitter: float = 0.1
    #: Failed restarts tolerated within the window before quarantine.
    restart_budget: int = 3
    #: Sliding window for the restart budget.
    budget_window: float = 3600.0
    #: Delay before the first revival probe of a quarantined instance.
    quarantine_backoff: float = 1800.0
    #: Multiplier applied to the probe delay per failed probe.
    quarantine_factor: float = 2.0
    #: Failed revival probes before the supervisor gives an instance up.
    max_revival_probes: int = 3
    #: Consecutive hung iterations before a watchdog restart.
    hang_limit: int = 3
    #: Consecutive no-response, no-coverage iterations before a watchdog
    #: restart; 0 disables the silent-death detector (the default, so
    #: chaos-free campaigns stay bit-identical to the historic runner).
    dead_air_limit: int = 0

    def __post_init__(self):
        for name in ("backoff_base", "backoff_max", "budget_window",
                     "quarantine_backoff"):
            if getattr(self, name) <= 0:
                raise ValueError("%s must be positive" % name)
        for name in ("backoff_factor", "quarantine_factor"):
            if getattr(self, name) < 1.0:
                raise ValueError("%s must be >= 1" % name)
        if not 0.0 <= self.backoff_jitter < 1.0:
            raise ValueError("backoff_jitter must be within [0, 1)")
        for name in ("restart_budget", "max_revival_probes", "hang_limit"):
            if getattr(self, name) < 1:
                raise ValueError("%s must be >= 1" % name)
        if self.dead_air_limit < 0:
            raise ValueError("dead_air_limit must be >= 0")

    @classmethod
    def for_chaos(cls) -> "SupervisorPolicy":
        """Defaults tuned for chaotic targets: watchdogs armed, faster
        revival so quarantined instances rejoin within the horizon."""
        return cls(quarantine_backoff=900.0, dead_air_limit=6)


class InstanceState(enum.Enum):
    """Supervision lifecycle state of one instance."""

    RUNNING = "running"
    BACKOFF = "backoff"
    QUARANTINED = "quarantined"
    GIVEN_UP = "given-up"


@dataclass(frozen=True)
class SupervisorEvent:
    """One structured supervision transition, in simulated time."""

    time: float
    instance: int
    kind: str  # restart | backoff | quarantine | revive-probe | revive | give-up | watchdog
    detail: str = ""


def event_counts(events: Sequence[SupervisorEvent]) -> Dict[str, int]:
    """Events aggregated by kind (the resilience-benchmark surface)."""
    counts: Dict[str, int] = {}
    for event in events:
        counts[event.kind] = counts.get(event.kind, 0) + 1
    return counts


@dataclass
class _Record:
    """Mutable supervision state for one instance."""

    rng: random.Random
    state: InstanceState = InstanceState.RUNNING
    failures: int = 0
    failure_times: Deque[float] = field(default_factory=deque)
    probes: int = 0
    next_probe: float = 0.0
    consecutive_hangs: int = 0
    dead_air: int = 0


class InstanceSupervisor:
    """Keeps every fuzzing instance alive, or retires it gracefully.

    Owned by :func:`repro.harness.campaign.run_campaign`; everything is
    driven by simulated time and per-instance seeded RNGs, so the same
    campaign seed yields a bit-identical event log on every run.
    """

    def __init__(self, ctx, mode, policy: SupervisorPolicy):
        self.ctx = ctx
        self.mode = mode
        self.policy = policy
        self.costs = ctx.costs
        self.events: List[SupervisorEvent] = []
        #: Every transition also lands on the campaign telemetry bus as
        #: a ``supervisor.events{kind=...}`` counter and a trace event.
        self.telemetry = getattr(ctx, "telemetry", NULL_TELEMETRY)
        self._records: Dict[int, _Record] = {
            instance.index: _Record(
                rng=random.Random(ctx.seed * 9_176 + instance.index * 131 + 7)
            )
            for instance in ctx.instances
        }

    # -- event log ---------------------------------------------------------

    def _emit(self, now: float, instance: FuzzingInstance, kind: str,
              detail: str = "") -> None:
        self.events.append(SupervisorEvent(
            time=now, instance=instance.index, kind=kind, detail=detail,
        ))
        self.telemetry.counter("supervisor.events", kind=kind).inc()
        self.telemetry.event(
            "supervisor." + kind, instance=instance.index, detail=detail,
        )

    def state_of(self, instance: FuzzingInstance) -> InstanceState:
        return self._records[instance.index].state

    # -- backoff schedule --------------------------------------------------

    def backoff_delay(self, attempt: int, instance_index: int) -> float:
        """Exponential delay for the ``attempt``-th consecutive failure,
        with deterministic jitter from the instance's supervision RNG."""
        record = self._records[instance_index]
        raw = self.policy.backoff_base * (
            self.policy.backoff_factor ** max(attempt - 1, 0)
        )
        delay = min(raw, self.policy.backoff_max)
        if self.policy.backoff_jitter:
            delay *= 1.0 + self.policy.backoff_jitter * (
                2.0 * record.rng.random() - 1.0
            )
        return delay

    # -- entry points driven by the campaign loop --------------------------

    def handle_crash(self, instance: FuzzingInstance, now: float) -> None:
        """A fault fired mid-fuzzing: charge the restart and recover."""
        instance.down_until = now + self.costs.crash_restart
        self._attempt_restart(instance, now, reason="crash")

    def handle_hang(self, instance: FuzzingInstance, now: float) -> None:
        """The target hung mid-send: charge the timeout; the hang
        watchdog restarts it after ``hang_limit`` consecutive hangs."""
        record = self._records[instance.index]
        instance.hangs += 1
        record.consecutive_hangs += 1
        record.dead_air = 0
        instance.down_until = now + self.costs.hang_timeout
        if record.consecutive_hangs >= self.policy.hang_limit:
            record.consecutive_hangs = 0
            self._emit(now, instance, "watchdog",
                       "hung %d consecutive iterations" % self.policy.hang_limit)
            instance.down_until = now + self.costs.hang_timeout + self.costs.crash_restart
            self._attempt_restart(instance, now, reason="watchdog-hang")

    def observe(self, instance: FuzzingInstance, result, now: float) -> None:
        """Bookkeeping for a completed (non-hung) iteration; runs the
        dead-air watchdog when armed."""
        record = self._records[instance.index]
        record.consecutive_hangs = 0
        if self.policy.dead_air_limit <= 0:
            return
        silent = (result.messages_sent > 0 and result.responses == 0
                  and not result.new_sites)
        if not silent:
            record.dead_air = 0
            return
        record.dead_air += 1
        if record.dead_air >= self.policy.dead_air_limit:
            record.dead_air = 0
            self._emit(now, instance, "watchdog",
                       "no responses for %d iterations"
                       % self.policy.dead_air_limit)
            instance.down_until = now + self.costs.crash_restart
            self._attempt_restart(instance, now, reason="watchdog-silent")

    def poll(self, now: float) -> None:
        """Advance pending transitions: backoff retries, revival probes."""
        for instance in self.ctx.instances:
            record = self._records[instance.index]
            if record.state is InstanceState.BACKOFF and now >= instance.down_until:
                self._attempt_restart(instance, now, reason="backoff-retry")
            elif (record.state is InstanceState.QUARANTINED
                  and now >= record.next_probe):
                self._revival_probe(instance, now)

    # -- transitions -------------------------------------------------------

    def _attempt_restart(self, instance: FuzzingInstance, now: float,
                         reason: str) -> None:
        record = self._records[instance.index]
        try:
            instance.restart(dict(instance.bundle.assignment))
        except StartupError as error:
            self._restart_failed(instance, now, "startup failed: %s" % error)
        except TargetHang:
            instance.down_until = now + self.costs.hang_timeout
            self._restart_failed(instance, now, "hung during startup")
        except SanitizerFault as fault:
            self.ctx.record_startup_fault(fault, instance=instance.index)
            self._restart_failed(instance, now, "crashed during startup")
        else:
            record.state = InstanceState.RUNNING
            record.failures = 0
            record.dead_air = 0
            record.consecutive_hangs = 0
            instance.down_until = max(
                instance.down_until, now + self.costs.crash_restart
            )
            self._emit(now, instance, "restart", reason)

    def _restart_failed(self, instance: FuzzingInstance, now: float,
                        detail: str) -> None:
        record = self._records[instance.index]
        record.failures += 1
        record.failure_times.append(now)
        floor = now - self.policy.budget_window
        while record.failure_times and record.failure_times[0] < floor:
            record.failure_times.popleft()
        if len(record.failure_times) > self.policy.restart_budget:
            self.quarantine(
                instance, now,
                "%d failed restarts within %.0fs"
                % (len(record.failure_times), self.policy.budget_window),
            )
            return
        delay = self.backoff_delay(record.failures, instance.index)
        record.state = InstanceState.BACKOFF
        instance.down_until = now + delay
        self._emit(now, instance, "backoff",
                   "%s; retry in %.0fs" % (detail, delay))

    def quarantine(self, instance: FuzzingInstance, now: float,
                   reason: str) -> None:
        """Circuit-break a flapping instance; the scheduler reallocates
        its share of the model space until a revival probe succeeds."""
        record = self._records[instance.index]
        record.state = InstanceState.QUARANTINED
        record.probes = 0
        record.failure_times.clear()
        instance.quarantined = True
        record.next_probe = now + self.policy.quarantine_backoff
        self._emit(now, instance, "quarantine", reason)
        self.mode.on_instance_lost(self.ctx, instance)

    def _revival_probe(self, instance: FuzzingInstance, now: float) -> None:
        record = self._records[instance.index]
        self._emit(now, instance, "revive-probe",
                   "attempt %d" % (record.probes + 1))
        try:
            instance.restart(dict(instance.bundle.assignment))
        except (StartupError, TargetHang):
            revived = False
        except SanitizerFault as fault:
            self.ctx.record_startup_fault(fault, instance=instance.index)
            revived = False
        else:
            revived = True
        if revived:
            record.state = InstanceState.RUNNING
            record.failures = 0
            record.probes = 0
            record.dead_air = 0
            record.consecutive_hangs = 0
            instance.quarantined = False
            instance.down_until = now + self.costs.crash_restart
            self._emit(now, instance, "revive", "")
            self.mode.on_instance_revived(self.ctx, instance)
            return
        record.probes += 1
        if record.probes >= self.policy.max_revival_probes:
            record.state = InstanceState.GIVEN_UP
            instance.quarantined = False
            instance.dead = True
            self._emit(now, instance, "give-up",
                       "after %d failed revival probes" % record.probes)
            return
        record.next_probe = now + self.policy.quarantine_backoff * (
            self.policy.quarantine_factor ** record.probes
        )
