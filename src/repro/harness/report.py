"""Render campaign results in the paper's table/figure formats."""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence

from repro.harness.stats import TimeSeries, mean, speedup
from repro.harness.supervisor import SupervisorEvent
from repro.targets.faults import BugLedger


def render_table(headers: Sequence[str], rows: Sequence[Sequence[str]]) -> str:
    """Monospace table with per-column alignment."""
    widths = [len(h) for h in headers]
    for row in rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(str(cell)))
    def fmt(cells):
        return " | ".join(str(c).ljust(widths[i]) for i, c in enumerate(cells))
    lines = [fmt(headers), "-+-".join("-" * w for w in widths)]
    lines.extend(fmt(row) for row in rows)
    return "\n".join(lines)


def improvement(contender: float, baseline: float) -> str:
    """Percentage improvement string (Table I's Improv column)."""
    if baseline <= 0:
        return "n/a"
    return "%+.1f%%" % (100.0 * (contender - baseline) / baseline)


def format_speedup(value: float) -> str:
    if value == float("inf"):
        return "inf"
    if value >= 10:
        return "{:,.0f}x".format(value)
    return "%.1fx" % value


def table1_row(subject: str,
               cmfuzz: Sequence, peach: Sequence, spfuzz: Sequence) -> List[str]:
    """One Table-I row from repeated campaign results per fuzzer.

    Each argument is a sequence of CampaignResult for that fuzzer.
    """
    cm_cov = mean([r.final_coverage for r in cmfuzz])
    pe_cov = mean([r.final_coverage for r in peach])
    sp_cov = mean([r.final_coverage for r in spfuzz])
    pe_speed = mean([
        speedup(p.coverage, c.coverage) for p, c in zip(peach, cmfuzz)
    ])
    sp_speed = mean([
        speedup(s.coverage, c.coverage) for s, c in zip(spfuzz, cmfuzz)
    ])
    return [
        subject,
        "%.0f" % cm_cov,
        "%.0f" % pe_cov,
        improvement(cm_cov, pe_cov),
        format_speedup(pe_speed),
        "%.0f" % sp_cov,
        improvement(cm_cov, sp_cov),
        format_speedup(sp_speed),
    ]


def render_figure4(series_by_fuzzer: Dict[str, TimeSeries],
                   horizon: float, width: int = 64, height: int = 12) -> str:
    """ASCII coverage-over-time chart (one panel of Figure 4)."""
    symbols = {}
    fallback = iter("*#@%&+")
    for name in series_by_fuzzer:
        initial = name[:1].upper() or "?"
        symbols[name] = initial if initial not in symbols.values() else next(fallback)
    peak = max((s.final_value for s in series_by_fuzzer.values()), default=1.0) or 1.0
    grid = [[" "] * width for _ in range(height)]
    for name, series in series_by_fuzzer.items():
        for column in range(width):
            t = horizon * column / max(width - 1, 1)
            value = series.value_at(t)
            row = int((height - 1) * (1.0 - value / peak))
            row = min(max(row, 0), height - 1)
            if grid[row][column] == " ":
                grid[row][column] = symbols[name]
    lines = ["%5d |%s" % (peak, "".join(grid[0]))]
    for row in range(1, height):
        label = "%5.0f" % (peak * (1.0 - row / (height - 1))) if row == height - 1 else "     "
        lines.append("%s |%s" % (label, "".join(grid[row])))
    lines.append("      +" + "-" * width)
    legend = "  ".join("%s=%s" % (symbols[name], name) for name in series_by_fuzzer)
    lines.append("       " + legend)
    return "\n".join(lines)


#: Column order of the supervision summary (also its kind vocabulary).
_SUPERVISOR_KINDS = ("restart", "backoff", "quarantine", "revive-probe",
                     "revive", "give-up", "watchdog")


def render_supervisor_summary(events: Sequence[SupervisorEvent]) -> str:
    """Per-instance supervision counters (restarts, quarantines, ...)."""
    per_instance: Dict[int, Dict[str, int]] = {}
    for event in events:
        counters = per_instance.setdefault(event.instance, {})
        counters[event.kind] = counters.get(event.kind, 0) + 1
    headers = ["Instance"] + [kind.title() for kind in _SUPERVISOR_KINDS]
    rows = []
    for index in sorted(per_instance):
        counters = per_instance[index]
        rows.append([str(index)] + [
            str(counters.get(kind, 0)) for kind in _SUPERVISOR_KINDS
        ])
    totals = ["total"] + [
        str(sum(1 for e in events if e.kind == kind))
        for kind in _SUPERVISOR_KINDS
    ]
    rows.append(totals)
    return render_table(headers, rows)


def render_metrics_summary(metrics: Optional[Dict[str, Any]]) -> str:
    """Campaign telemetry snapshot as monospace tables (``--metrics``).

    Counters and gauges are listed by series key; histograms collapse to
    count/mean/min/max. An absent snapshot renders as a hint rather than
    an empty table, so piping a telemetry-off run through ``--metrics``
    explains itself.
    """
    if not metrics:
        return "(telemetry disabled: no metrics recorded)"
    sections: List[str] = []
    counters = metrics.get("counters") or {}
    if counters:
        rows = [[key, str(value)] for key, value in sorted(counters.items())]
        sections.append(render_table(["Counter", "Value"], rows))
    gauges = metrics.get("gauges") or {}
    if gauges:
        rows = [[key, "%g" % value] for key, value in sorted(gauges.items())]
        sections.append(render_table(["Gauge", "Value"], rows))
    histograms = metrics.get("histograms") or {}
    if histograms:
        rows = []
        for key, h in sorted(histograms.items()):
            count = h.get("count", 0)
            total = h.get("sum", 0.0)
            mean_value = total / count if count else 0.0
            rows.append([
                key, str(count), "%.4f" % mean_value,
                "%.4f" % (h.get("min") or 0.0), "%.4f" % (h.get("max") or 0.0),
            ])
        sections.append(
            render_table(["Histogram", "Count", "Mean", "Min", "Max"], rows))
    return "\n\n".join(sections) if sections else "(no metric series recorded)"


def render_bug_table(ledger: BugLedger) -> str:
    """Table II: unique vulnerabilities with type and affected function."""
    rows = []
    for index, report in enumerate(ledger.unique_bugs(), start=1):
        rows.append([
            str(index), report.protocol, report.kind.value, report.function,
        ])
    return render_table(["No.", "Protocol", "Vulnerability Type", "Affected Function"], rows)
