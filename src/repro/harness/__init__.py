"""Campaign harness: simulated clock, statistics, campaign runner, reports."""

from repro.harness.campaign import CampaignConfig, CampaignResult, run_campaign, run_repeated
from repro.harness.checkpoint import (
    CHECKPOINT_SCHEMA_VERSION,
    CheckpointPayload,
    CheckpointStore,
    campaign_key,
)
from repro.harness.executor import (
    CampaignOutcome,
    CampaignSpec,
    CellFailure,
    CellResult,
    ExecutorError,
    ResultCache,
    execute_specs,
    outcomes,
    results,
    run_spec,
    specs_for_repeated,
)
from repro.harness.export import (
    EXPORT_SCHEMA_VERSION,
    comparison_summary,
    load_export_json,
    result_to_dict,
    results_to_json,
    validate_export_dict,
)
from repro.harness.simclock import CostModel, SimClock
from repro.harness.stats import TimeSeries, mean, speedup

__all__ = [
    "CHECKPOINT_SCHEMA_VERSION",
    "EXPORT_SCHEMA_VERSION",
    "CampaignConfig",
    "CampaignOutcome",
    "CampaignResult",
    "CampaignSpec",
    "CellFailure",
    "CellResult",
    "CheckpointPayload",
    "CheckpointStore",
    "CostModel",
    "ExecutorError",
    "ResultCache",
    "SimClock",
    "TimeSeries",
    "campaign_key",
    "comparison_summary",
    "execute_specs",
    "load_export_json",
    "mean",
    "outcomes",
    "result_to_dict",
    "results",
    "results_to_json",
    "run_campaign",
    "run_repeated",
    "run_spec",
    "specs_for_repeated",
    "speedup",
    "validate_export_dict",
]
