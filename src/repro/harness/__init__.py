"""Campaign harness: simulated clock, statistics, campaign runner, reports."""

from repro.harness.campaign import CampaignConfig, CampaignResult, run_campaign, run_repeated
from repro.harness.executor import (
    CampaignOutcome,
    CampaignSpec,
    CellFailure,
    CellResult,
    ExecutorError,
    ResultCache,
    execute_specs,
    outcomes,
    results,
    run_spec,
    specs_for_repeated,
)
from repro.harness.export import comparison_summary, result_to_dict, results_to_json
from repro.harness.simclock import CostModel, SimClock
from repro.harness.stats import TimeSeries, mean, speedup

__all__ = [
    "CampaignConfig",
    "CampaignOutcome",
    "CampaignResult",
    "CampaignSpec",
    "CellFailure",
    "CellResult",
    "CostModel",
    "ExecutorError",
    "ResultCache",
    "SimClock",
    "TimeSeries",
    "comparison_summary",
    "execute_specs",
    "mean",
    "outcomes",
    "result_to_dict",
    "results",
    "results_to_json",
    "run_campaign",
    "run_repeated",
    "run_spec",
    "specs_for_repeated",
    "speedup",
]
