"""Campaign harness: simulated clock, statistics, campaign runner, reports."""

from repro.harness.campaign import CampaignConfig, CampaignResult, run_campaign, run_repeated
from repro.harness.export import comparison_summary, result_to_dict, results_to_json
from repro.harness.simclock import CostModel, SimClock
from repro.harness.stats import TimeSeries, mean, speedup

__all__ = [
    "CampaignConfig",
    "CampaignResult",
    "CostModel",
    "SimClock",
    "TimeSeries",
    "comparison_summary",
    "mean",
    "result_to_dict",
    "results_to_json",
    "run_campaign",
    "run_repeated",
    "speedup",
]
