"""Simulated time.

The paper's campaigns run 24 wall-clock hours; we reproduce the time axis
with a simulated clock so a full campaign takes seconds of real time.
Every observable action (a fuzzing iteration, a target restart after a
crash, a configuration-mutation restart, a startup probe) advances the
clock by a fixed cost from the :class:`CostModel`.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class CostModel:
    """Simulated durations, in seconds, of harness actions.

    Defaults give 24 h / iteration_cost = 2880 iterations per instance per
    simulated day — small enough to run dozens of campaigns in a test
    suite, large enough for coverage growth curves to have shape.
    """

    iteration: float = 30.0
    crash_restart: float = 120.0
    config_restart: float = 240.0
    startup_probe: float = 0.2
    #: Send timeout charged when a target hangs (watchdog detection cost).
    hang_timeout: float = 90.0

    def __post_init__(self):
        for field_name in ("iteration", "crash_restart", "config_restart",
                           "startup_probe", "hang_timeout"):
            if getattr(self, field_name) <= 0:
                raise ValueError("%s cost must be positive" % field_name)


class SimClock:
    """A monotonically advancing simulated clock."""

    def __init__(self, start: float = 0.0):
        self._now = float(start)

    @property
    def now(self) -> float:
        return self._now

    def advance(self, seconds: float) -> float:
        if seconds < 0:
            raise ValueError("cannot advance the clock backwards")
        self._now += seconds
        return self._now

    def __repr__(self) -> str:
        return "SimClock(%.1fs)" % self._now
