"""Serialise campaign results for external analysis/plotting.

Converts :class:`~repro.harness.campaign.CampaignResult` objects into
plain dicts / JSON so the coverage curves and bug tables can be consumed
by notebooks or plotting scripts without importing the framework.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Iterable, List

from repro.errors import SchemaVersionError
from repro.harness.campaign import CampaignResult
from repro.harness.supervisor import event_counts

#: Bumped whenever the export layout changes incompatibly; loaders
#: reject other versions with :class:`SchemaVersionError` instead of
#: mis-deserializing. 1: first versioned layout (adds this very key).
EXPORT_SCHEMA_VERSION = 1


def result_to_dict(result: CampaignResult) -> Dict[str, Any]:
    """One campaign as a JSON-friendly dict.

    The ``metrics`` key (the telemetry snapshot) is present only when
    the campaign ran with telemetry enabled, so telemetry-off exports
    stay byte-identical to the historic layout.
    """
    data = {
        "schema_version": EXPORT_SCHEMA_VERSION,
        "mode": result.mode,
        "target": result.target,
        "final_coverage": result.final_coverage,
        "iterations": result.iterations,
        "startup_conflicts": result.startup_conflicts,
        "supervisor_events": [
            {
                "time": event.time,
                "instance": event.instance,
                "kind": event.kind,
                "detail": event.detail,
            }
            for event in result.supervisor_events
        ],
        "supervisor_event_counts": event_counts(result.supervisor_events),
        "coverage": [[t, v] for t, v in result.coverage.points()],
        "bugs": [
            {
                "protocol": bug.protocol,
                "kind": bug.kind.value,
                "function": bug.function,
                "detail": bug.detail,
                "sim_time": bug.sim_time,
                "instance": bug.instance,
            }
            for bug in result.bugs.unique_bugs()
        ],
        "instances": [
            {
                "index": instance.index,
                "coverage": instance.coverage,
                "restarts": instance.restarts,
                "config_mutations": instance.config_mutations,
                "dead": instance.dead,
                "quarantined": instance.quarantined,
                "hangs": instance.hangs,
                "group": list(instance.bundle.group),
                "assignment": {
                    key: value for key, value in instance.bundle.assignment.items()
                },
            }
            for instance in result.instances
        ],
    }
    if result.metrics is not None:
        data["metrics"] = result.metrics
    return data


def results_to_json(results: Iterable[CampaignResult], indent: int = 2) -> str:
    """Serialise several campaigns to a JSON array."""
    return json.dumps([result_to_dict(r) for r in results], indent=indent,
                      default=str, sort_keys=True)


def validate_export_dict(data: Any, source: str = "export") -> Dict[str, Any]:
    """Check one exported campaign dict's schema version.

    Returns:
        The dict unchanged, for chaining.

    Raises:
        SchemaVersionError: When ``schema_version`` is missing (a
            pre-versioning export) or differs from
            :data:`EXPORT_SCHEMA_VERSION`.
    """
    if not isinstance(data, dict):
        raise SchemaVersionError(source, None, EXPORT_SCHEMA_VERSION)
    version = data.get("schema_version")
    if version != EXPORT_SCHEMA_VERSION:
        raise SchemaVersionError(source, version, EXPORT_SCHEMA_VERSION)
    return data


def load_export_json(text: str, source: str = "export") -> List[Dict[str, Any]]:
    """Parse a :func:`results_to_json` document, rejecting old layouts."""
    payload = json.loads(text)
    if not isinstance(payload, list):
        raise SchemaVersionError(source, None, EXPORT_SCHEMA_VERSION)
    return [validate_export_dict(entry, source=source) for entry in payload]


def comparison_summary(results_by_mode: Dict[str, List[CampaignResult]]) -> Dict[str, Any]:
    """Aggregate repeated runs per fuzzer into a compact comparison."""
    summary: Dict[str, Any] = {}
    for mode, results in results_by_mode.items():
        coverages = [r.final_coverage for r in results]
        bug_counts = [len(r.bugs) for r in results]
        summary[mode] = {
            "repetitions": len(results),
            "mean_coverage": sum(coverages) / len(coverages) if coverages else 0.0,
            "min_coverage": min(coverages) if coverages else 0,
            "max_coverage": max(coverages) if coverages else 0,
            "mean_bugs": sum(bug_counts) / len(bug_counts) if bug_counts else 0.0,
        }
    return summary
