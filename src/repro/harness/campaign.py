"""The campaign runner: drives N parallel instances for a simulated day.

Reproduces the paper's experimental loop: a mode (Peach / SPFuzz /
CMFuzz) sets up four isolated instances which fuzz for 24 simulated
hours; the harness tracks the global branch-coverage time series (the
union across instances), triages crashes into a deduplicated bug ledger,
and restarts crashed targets with the appropriate simulated downtime.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Set

from repro.errors import HarnessError, StartupError, TargetHang
from repro.fuzzing.statemodel import StateModel
from repro.fuzzing.strategies import MutationStrategy, RandomFieldStrategy
from repro.harness.simclock import CostModel, SimClock
from repro.harness.stats import TimeSeries
from repro.harness.supervisor import (
    InstanceSupervisor,
    SupervisorEvent,
    SupervisorPolicy,
)
from repro.netns.namespace import NamespaceManager
from repro.parallel.base import ParallelMode
from repro.parallel.instance import FuzzingInstance
from repro.targets.chaos import ChaosPolicy, chaos_wrapper
from repro.targets.faults import BugLedger, CrashReport, SanitizerFault
from repro.telemetry import Telemetry, TelemetryConfig


@dataclass
class CampaignConfig:
    """Knobs for one campaign run."""

    n_instances: int = 4
    duration_hours: float = 24.0
    seed: int = 0
    costs: CostModel = field(default_factory=CostModel)
    sample_interval: float = 600.0
    sync_interval: float = 600.0
    strategy_factory: Callable[[], MutationStrategy] = RandomFieldStrategy
    #: Fault-injection policy applied to every instance's target; None
    #: (the default) runs the target unmodified.
    chaos: Optional[ChaosPolicy] = None
    #: Seed of the chaos fault schedule (independent of the fuzzing seed
    #: so the same campaign can be replayed under different weather).
    chaos_seed: int = 0
    #: Supervision policy: backoff, quarantine, revival, watchdogs.
    supervisor: SupervisorPolicy = field(default_factory=SupervisorPolicy)
    #: Observability: None (the default) runs with the no-op telemetry,
    #: keeping campaigns bit-identical to the un-instrumented runner.
    telemetry: Optional[TelemetryConfig] = None
    #: Worker processes for the model-build probe fan-out (relation
    #: quantification). 1 (the default) probes serially in-process;
    #: inside a pooled campaign cell the value is forced back to serial
    #: because daemonic workers cannot spawn children.
    probe_workers: int = 1
    #: Memoise startup-probe outcomes in the content-addressed on-disk
    #: cache (``.cmfuzz-cache/probes/``); a warm cache rebuilds the
    #: relation model without a single target launch.
    probe_cache: bool = False
    #: Probe-cache root override (default ``$CMFUZZ_CACHE_DIR`` or
    #: ``.cmfuzz-cache/``).
    probe_cache_dir: Optional[str] = None

    def __post_init__(self):
        if self.n_instances < 1:
            raise HarnessError("need at least one instance")
        if self.duration_hours <= 0:
            raise HarnessError("duration must be positive")
        if self.probe_workers < 1:
            raise HarnessError("need at least one probe worker")


@dataclass
class CampaignResult:
    """Everything a campaign produces."""

    mode: str
    target: str
    coverage: TimeSeries
    bugs: BugLedger
    instances: List[FuzzingInstance]
    startup_conflicts: int = 0
    iterations: int = 0
    #: Structured supervision log: restart/backoff/quarantine/revive/...
    supervisor_events: List[SupervisorEvent] = field(default_factory=list)
    #: MetricsRegistry.snapshot() of the campaign's telemetry; None when
    #: telemetry was disabled (so exports stay bit-identical).
    metrics: Optional[Dict[str, Any]] = None

    @property
    def final_coverage(self) -> int:
        return int(self.coverage.final_value)

    def unique_bug_count(self) -> int:
        return len(self.bugs)


class _CampaignContext:
    """The state bag parallel modes interact with."""

    def __init__(self, target_cls, state_model: StateModel, config: CampaignConfig):
        self.target_cls = target_cls
        self.state_model = state_model
        self.n_instances = config.n_instances
        self.seed = config.seed
        self.costs = config.costs
        self.clock = SimClock()
        self.namespaces = NamespaceManager()
        self.instances: List[FuzzingInstance] = []
        self.bugs = BugLedger()
        self.startup_conflicts = 0
        #: Model-build probe scheduling knobs, consumed by modes that
        #: quantify relations (CMFuzz, hybrid).
        self.probe_workers = config.probe_workers
        self.probe_cache = config.probe_cache
        self.probe_cache_dir = config.probe_cache_dir
        #: Campaign-wide telemetry; the shared no-op when not configured.
        self.telemetry = Telemetry.from_config(
            config.telemetry, now_fn=lambda: self.clock.now,
        )
        #: Set by run_campaign once the instances exist; modes may use it
        #: to quarantine instead of killing (graceful degradation).
        self.supervisor: Optional[InstanceSupervisor] = None
        self._strategy_factory = config.strategy_factory

    def make_strategy(self) -> MutationStrategy:
        return self._strategy_factory()

    def record_startup_fault(self, fault: SanitizerFault, instance: int) -> None:
        self.telemetry.counter("campaign.startup_faults").inc()
        self.bugs.record(
            CrashReport.from_fault(
                fault, self.target_cls.PROTOCOL,
                sim_time=self.clock.now, instance=instance,
            )
        )


def _safe_initial_start(ctx: _CampaignContext, instance: FuzzingInstance) -> None:
    """Boot an instance, degrading toward the default configuration.

    The initial bundle is built from first typical values, which embed the
    source defaults, so this almost always succeeds on the first try;
    conflicting groups shed keys until the target boots.
    """
    assignment = dict(instance.bundle.assignment)
    for _ in range(len(assignment) + 1):
        try:
            instance.restart(assignment)
            return
        except TargetHang:
            continue  # transient startup hang: retry the same assignment
        except StartupError as error:
            ctx.startup_conflicts += 1
            dropped = False
            for key in error.conflicting:
                if key in assignment:
                    del assignment[key]
                    dropped = True
            if not dropped and assignment:
                assignment.popitem()
        except SanitizerFault as fault:
            ctx.record_startup_fault(fault, instance=instance.index)
            if assignment:
                assignment.popitem()
    try:
        instance.restart({})
    except (StartupError, SanitizerFault, TargetHang) as error:
        # Even the default configuration refuses to boot. Pre-supervisor
        # this aborted the whole campaign; now the instance is handed to
        # the supervisor as quarantined and revival probes take over.
        if isinstance(error, SanitizerFault):
            ctx.record_startup_fault(error, instance=instance.index)
        if ctx.supervisor is not None:
            ctx.supervisor.quarantine(
                instance, ctx.clock.now,
                "default configuration failed at initial start",
            )
        else:
            instance.dead = True


def run_campaign(
    target_cls,
    state_model: StateModel,
    mode: ParallelMode,
    config: Optional[CampaignConfig] = None,
) -> CampaignResult:
    """Run one parallel fuzzing campaign and return its results."""
    config = config or CampaignConfig()
    ctx = _CampaignContext(target_cls, state_model, config)
    telemetry = ctx.telemetry
    with telemetry.span("campaign.setup", mode=mode.name,
                        target=target_cls.NAME):
        ctx.instances = mode.create_instances(ctx)
    if config.chaos is not None and config.chaos.enabled:
        for instance in ctx.instances:
            instance.target_wrapper = chaos_wrapper(
                config.chaos, config.chaos_seed, instance.index
            )
    supervisor = InstanceSupervisor(ctx, mode, config.supervisor)
    ctx.supervisor = supervisor
    for instance in ctx.instances:
        _safe_initial_start(ctx, instance)

    horizon = config.duration_hours * 3600.0
    coverage = TimeSeries()
    global_sites: Set[str] = set()
    for instance in ctx.instances:
        global_sites.update(instance.collector.total.sites())
    coverage.record(ctx.clock.now, len(global_sites))

    next_sample = ctx.clock.now + config.sample_interval
    next_sync = ctx.clock.now + config.sync_interval
    iterations = 0
    sync_rounds = 0
    g_global_sites = telemetry.gauge("campaign.global_sites")
    g_sim_time = telemetry.gauge("campaign.sim_time")
    c_sync_rounds = telemetry.counter("campaign.sync_rounds")
    c_samples = telemetry.counter("campaign.samples")

    while ctx.clock.now < horizon:
        now = ctx.clock.now
        supervisor.poll(now)
        for instance in ctx.instances:
            if not instance.available(now):
                continue
            result = instance.step()
            iterations += 1
            if result.new_sites:
                global_sites.update(result.new_sites)
            mode.after_iteration(ctx, instance, result)
            if result.hung:
                supervisor.handle_hang(instance, now)
                continue
            supervisor.observe(instance, result, now)
            if result.fault:
                ctx.bugs.record(
                    CrashReport.from_fault(
                        result.fault, target_cls.PROTOCOL,
                        sim_time=now, instance=instance.index,
                    )
                )
                supervisor.handle_crash(instance, now)
        ctx.clock.advance(config.costs.iteration)
        if ctx.clock.now >= next_sample:
            coverage.record(ctx.clock.now, len(global_sites))
            c_samples.inc()
            g_global_sites.set(len(global_sites))
            g_sim_time.set(ctx.clock.now)
            next_sample += config.sample_interval
        if ctx.clock.now >= next_sync:
            sync_rounds += 1
            c_sync_rounds.inc()
            with telemetry.span("campaign.sync", round=sync_rounds):
                mode.on_sync(ctx)
            next_sync += config.sync_interval

    coverage.record(horizon, len(global_sites))
    g_global_sites.set(len(global_sites))
    g_sim_time.set(horizon)
    ctx.namespaces.destroy_all()
    metrics = telemetry.snapshot() if telemetry.enabled else None
    telemetry.close()
    return CampaignResult(
        mode=mode.name,
        target=target_cls.NAME,
        coverage=coverage,
        bugs=ctx.bugs,
        instances=ctx.instances,
        startup_conflicts=ctx.startup_conflicts,
        iterations=iterations,
        supervisor_events=supervisor.events,
        metrics=metrics,
    )


def run_repeated(
    target_cls,
    state_model_factory: Callable[[], StateModel],
    mode_factory: Callable[[], ParallelMode],
    repetitions: int = 5,
    config: Optional[CampaignConfig] = None,
) -> List[CampaignResult]:
    """Repeat a campaign with distinct seeds (the paper runs five)."""
    base = config or CampaignConfig()
    results = []
    for repetition in range(repetitions):
        rep_config = dataclasses.replace(base, seed=base.seed + repetition * 101)
        results.append(
            run_campaign(target_cls, state_model_factory(), mode_factory(), rep_config)
        )
    return results
