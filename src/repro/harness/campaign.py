"""The campaign runner: drives N parallel instances for a simulated day.

Reproduces the paper's experimental loop: a mode (Peach / SPFuzz /
CMFuzz) sets up four isolated instances which fuzz for 24 simulated
hours; the harness tracks the global branch-coverage time series (the
union across instances), triages crashes into a deduplicated bug ledger,
and restarts crashed targets with the appropriate simulated downtime.

With ``checkpoint_every`` set the loop additionally persists its entire
state (one pickled object graph: engines, RNG streams, corpus, bug
ledger, supervisor, scheduler cursors) at fixed simulated intervals, and
SIGTERM/SIGINT trigger one final checkpoint before
:class:`~repro.errors.CampaignInterrupted` unwinds the run; ``resume``
continues from the newest intact save and the finished campaign is
byte-identical to an uninterrupted one.
"""

from __future__ import annotations

import dataclasses
import math
import signal
import threading
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Set

from repro.errors import (
    CampaignInterrupted,
    CheckpointError,
    HarnessError,
    StartupError,
    TargetHang,
)
from repro.faultplane import FaultInjector
from repro.fuzzing.statemodel import StateModel
from repro.fuzzing.strategies import MutationStrategy, RandomFieldStrategy
from repro.harness.simclock import CostModel, SimClock
from repro.harness.stats import TimeSeries
from repro.harness.supervisor import (
    InstanceSupervisor,
    SupervisorEvent,
    SupervisorPolicy,
)
from repro.netns.namespace import NamespaceManager
from repro.parallel.base import ParallelMode
from repro.parallel.instance import FuzzingInstance
from repro.targets.chaos import ChaosPolicy, chaos_wrapper
from repro.targets.faults import BugLedger, CrashReport, SanitizerFault
from repro.telemetry import Telemetry, TelemetryConfig


@dataclass
class CampaignConfig:
    """Knobs for one campaign run."""

    n_instances: int = 4
    duration_hours: float = 24.0
    seed: int = 0
    costs: CostModel = field(default_factory=CostModel)
    sample_interval: float = 600.0
    sync_interval: float = 600.0
    strategy_factory: Callable[[], MutationStrategy] = RandomFieldStrategy
    #: Fault-injection policy applied to every instance's target; None
    #: (the default) runs the target unmodified.
    chaos: Optional[ChaosPolicy] = None
    #: Seed of the chaos fault schedule (independent of the fuzzing seed
    #: so the same campaign can be replayed under different weather).
    chaos_seed: int = 0
    #: Supervision policy: backoff, quarantine, revival, watchdogs.
    supervisor: SupervisorPolicy = field(default_factory=SupervisorPolicy)
    #: Observability: None (the default) runs with the no-op telemetry,
    #: keeping campaigns bit-identical to the un-instrumented runner.
    telemetry: Optional[TelemetryConfig] = None
    #: Worker processes for the model-build probe fan-out (relation
    #: quantification). 1 (the default) probes serially in-process;
    #: inside a pooled campaign cell the value is forced back to serial
    #: because daemonic workers cannot spawn children.
    probe_workers: int = 1
    #: Memoise startup-probe outcomes in the content-addressed on-disk
    #: cache (``.cmfuzz-cache/probes/``); a warm cache rebuilds the
    #: relation model without a single target launch.
    probe_cache: bool = False
    #: Probe-cache root override (default ``$CMFUZZ_CACHE_DIR`` or
    #: ``.cmfuzz-cache/``).
    probe_cache_dir: Optional[str] = None
    #: Checkpoint the full campaign state every this many *simulated*
    #: seconds (``.cmfuzz-cache/checkpoints/``). None (the default)
    #: disables checkpointing and keeps the run byte-identical to the
    #: historic loop.
    checkpoint_every: Optional[float] = None
    #: Continue from the newest intact checkpoint when one exists;
    #: silently starts fresh otherwise, so ``resume=True`` is always
    #: safe to pass.
    resume: bool = False
    #: Checkpoint root override (default
    #: ``$CMFUZZ_CACHE_DIR/checkpoints`` or ``.cmfuzz-cache/checkpoints``).
    checkpoint_dir: Optional[str] = None
    #: How many checkpoints to retain per campaign; older blobs are
    #: pruned so corruption of the newest save still leaves fallbacks.
    checkpoint_keep: int = 3
    #: Probability in [0, 1] of injecting a fault into each of the
    #: harness's own I/O operations (caches, checkpoints, worker pool,
    #: telemetry sink) — the *infrastructure* counterpart of ``chaos``.
    #: 0.0 (the default) injects nothing and keeps every boundary
    #: bit-identical to the un-instrumented path. Faults may cost time,
    #: never results: exports are byte-identical at any level.
    io_chaos_level: float = 0.0
    #: Seed of the infrastructure fault schedule (independent of the
    #: fuzzing seed and of ``chaos_seed``).
    io_chaos_seed: int = 0
    #: Restore fail-fast I/O: retry exhaustion re-raises the original
    #: error instead of degrading (skip the checkpoint, fall back to an
    #: in-memory cache).
    strict_io: bool = False

    def __post_init__(self):
        if self.n_instances < 1:
            raise HarnessError("need at least one instance")
        if self.duration_hours <= 0:
            raise HarnessError("duration must be positive")
        if self.probe_workers < 1:
            raise HarnessError("need at least one probe worker")
        if self.checkpoint_every is not None and self.checkpoint_every <= 0:
            raise HarnessError("checkpoint interval must be positive")
        if self.checkpoint_keep < 1:
            raise HarnessError("need to keep at least one checkpoint")
        if not 0.0 <= self.io_chaos_level <= 1.0:
            raise HarnessError("io-chaos level must be in [0, 1], got %r"
                               % (self.io_chaos_level,))


@dataclass
class CampaignResult:
    """Everything a campaign produces."""

    mode: str
    target: str
    coverage: TimeSeries
    bugs: BugLedger
    instances: List[FuzzingInstance]
    startup_conflicts: int = 0
    iterations: int = 0
    #: Structured supervision log: restart/backoff/quarantine/revive/...
    supervisor_events: List[SupervisorEvent] = field(default_factory=list)
    #: MetricsRegistry.snapshot() of the campaign's telemetry; None when
    #: telemetry was disabled (so exports stay bit-identical).
    metrics: Optional[Dict[str, Any]] = None
    #: Fault-plane accounting (:meth:`FaultInjector.summary`) when
    #: io-chaos was enabled; None otherwise. Deliberately *not* part of
    #: the export schema — the weather is operational detail, and the
    #: exported results must not depend on it.
    io_faults: Optional[Dict[str, Any]] = None

    @property
    def final_coverage(self) -> int:
        return int(self.coverage.final_value)

    def unique_bug_count(self) -> int:
        return len(self.bugs)


class _ClockNow:
    """Picklable ``now_fn`` reading the campaign's simulated clock.

    A bound lambda would pin telemetry timestamps to the clock just as
    well, but lambdas cannot cross the checkpoint pickle boundary.
    """

    __slots__ = ("clock",)

    def __init__(self, clock):
        self.clock = clock

    def __call__(self) -> float:
        return self.clock.now


class _CampaignContext:
    """The state bag parallel modes interact with."""

    def __init__(self, target_cls, state_model: StateModel, config: CampaignConfig):
        self.target_cls = target_cls
        self.state_model = state_model
        self.n_instances = config.n_instances
        self.seed = config.seed
        self.costs = config.costs
        self.clock = SimClock()
        self.namespaces = NamespaceManager()
        self.instances: List[FuzzingInstance] = []
        self.bugs = BugLedger()
        self.startup_conflicts = 0
        #: Model-build probe scheduling knobs, consumed by modes that
        #: quantify relations (CMFuzz, hybrid).
        self.probe_workers = config.probe_workers
        self.probe_cache = config.probe_cache
        self.probe_cache_dir = config.probe_cache_dir
        #: Infrastructure fault injection (io-chaos). Built before the
        #: telemetry so the trace sink can consult it; disabled configs
        #: get a no-op injector whose wrappers still retry real errors.
        self.io_injector = FaultInjector.from_campaign_config(config)
        #: Campaign-wide telemetry; the shared no-op when not configured.
        self.telemetry = Telemetry.from_config(
            config.telemetry, now_fn=_ClockNow(self.clock),
            injector=self.io_injector if self.io_injector.enabled else None,
        )
        self.io_injector.telemetry = self.telemetry
        #: Set by run_campaign once the instances exist; modes may use it
        #: to quarantine instead of killing (graceful degradation).
        self.supervisor: Optional[InstanceSupervisor] = None
        self._strategy_factory = config.strategy_factory

    def make_strategy(self) -> MutationStrategy:
        return self._strategy_factory()

    def record_startup_fault(self, fault: SanitizerFault, instance: int) -> None:
        self.telemetry.counter("campaign.startup_faults").inc()
        self.bugs.record(
            CrashReport.from_fault(
                fault, self.target_cls.PROTOCOL,
                sim_time=self.clock.now, instance=instance,
            )
        )


def _safe_initial_start(ctx: _CampaignContext, instance: FuzzingInstance) -> None:
    """Boot an instance, degrading toward the default configuration.

    The initial bundle is built from first typical values, which embed the
    source defaults, so this almost always succeeds on the first try;
    conflicting groups shed keys until the target boots.
    """
    assignment = dict(instance.bundle.assignment)
    for _ in range(len(assignment) + 1):
        try:
            instance.restart(assignment)
            return
        except TargetHang:
            continue  # transient startup hang: retry the same assignment
        except StartupError as error:
            ctx.startup_conflicts += 1
            dropped = False
            for key in error.conflicting:
                if key in assignment:
                    del assignment[key]
                    dropped = True
            if not dropped and assignment:
                assignment.popitem()
        except SanitizerFault as fault:
            ctx.record_startup_fault(fault, instance=instance.index)
            if assignment:
                assignment.popitem()
    try:
        instance.restart({})
    except (StartupError, SanitizerFault, TargetHang) as error:
        # Even the default configuration refuses to boot. Pre-supervisor
        # this aborted the whole campaign; now the instance is handed to
        # the supervisor as quarantined and revival probes take over.
        if isinstance(error, SanitizerFault):
            ctx.record_startup_fault(error, instance=instance.index)
        if ctx.supervisor is not None:
            ctx.supervisor.quarantine(
                instance, ctx.clock.now,
                "default configuration failed at initial start",
            )
        else:
            instance.dead = True


@dataclass
class _LoopState:
    """The complete resumable state of one campaign's main loop.

    Checkpointing pickles this object — one graph, so every shared
    reference (engines' cached counters, the supervisor's view of the
    context, sync outboxes) is preserved with identity intact and the
    restored loop is indistinguishable from the uninterrupted one.
    """

    ctx: _CampaignContext
    mode: ParallelMode
    supervisor: InstanceSupervisor
    coverage: TimeSeries
    global_sites: Set[str]
    next_sample: float
    next_sync: float
    iterations: int = 0
    sync_rounds: int = 0


class _InterruptWatch:
    """Latches SIGTERM/SIGINT while a checkpointing campaign runs.

    The handler only records the signal; the loop notices the latch at
    its next iteration boundary, writes a final checkpoint and raises
    :class:`CampaignInterrupted`. Installed only on the main thread
    (signal handlers cannot be set elsewhere) and only when
    checkpointing is active, so non-checkpointing campaigns keep the
    default Ctrl-C behaviour.
    """

    def __init__(self, active: bool):
        self.active = active
        self.signum: Optional[int] = None
        self._previous = []

    @property
    def triggered(self) -> bool:
        return self.signum is not None

    def _handle(self, signum, frame) -> None:
        self.signum = signum

    def __enter__(self) -> "_InterruptWatch":
        if self.active and threading.current_thread() is threading.main_thread():
            for signum in (signal.SIGTERM, signal.SIGINT):
                self._previous.append((signum, signal.signal(signum, self._handle)))
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        for signum, previous in self._previous:
            signal.signal(signum, previous)
        self._previous = []


def _fresh_state(target_cls, state_model: StateModel, mode: ParallelMode,
                 config: CampaignConfig) -> _LoopState:
    """Build the campaign's instances and pre-loop accounting."""
    ctx = _CampaignContext(target_cls, state_model, config)
    telemetry = ctx.telemetry
    with telemetry.span("campaign.setup", mode=mode.name,
                        target=target_cls.NAME):
        ctx.instances = mode.create_instances(ctx)
    if config.chaos is not None and config.chaos.enabled:
        for instance in ctx.instances:
            instance.target_wrapper = chaos_wrapper(
                config.chaos, config.chaos_seed, instance.index
            )
    supervisor = InstanceSupervisor(ctx, mode, config.supervisor)
    ctx.supervisor = supervisor
    for instance in ctx.instances:
        _safe_initial_start(ctx, instance)

    coverage = TimeSeries()
    global_sites: Set[str] = set()
    for instance in ctx.instances:
        global_sites.update(instance.collector.total.sites())
    coverage.record(ctx.clock.now, len(global_sites))
    return _LoopState(
        ctx=ctx,
        mode=mode,
        supervisor=supervisor,
        coverage=coverage,
        global_sites=global_sites,
        next_sample=ctx.clock.now + config.sample_interval,
        next_sync=ctx.clock.now + config.sync_interval,
    )


def _save_checkpoint(store, state: _LoopState,
                     reason: str) -> Optional[str]:
    """One atomic checkpoint plus its operational telemetry.

    A failed save (retries exhausted at the fault plane, or a real
    persistent I/O error) is skipped-and-continued: losing one
    checkpoint only costs resume granularity, never results, so it must
    not abort hours of campaigning. ``strict_io`` restores the
    fail-fast behaviour. Returns the blob path, or ``None`` when the
    save was skipped.
    """
    telemetry = state.ctx.telemetry
    try:
        path = store.save(state, sim_time=state.ctx.clock.now,
                          iterations=state.iterations)
    except CheckpointError:
        if getattr(state.ctx, "io_injector", None) is not None \
                and state.ctx.io_injector.strict:
            raise
        telemetry.counter("checkpoint.skipped", reason=reason).inc()
        telemetry.event("checkpoint.skipped", reason=reason,
                        iterations=state.iterations)
        return None
    telemetry.counter("checkpoint.saves", reason=reason).inc()
    telemetry.event("checkpoint.save", reason=reason,
                    iterations=state.iterations)
    return path


#: Metric namespaces excluded from the exported snapshot: they depend
#: on *when* a campaign was killed/resumed or on which infrastructure
#: faults the weather injected — exactly what the byte-identical-export
#: invariant must not depend on.
_OPERATIONAL_PREFIXES = ("checkpoint.", "faultplane.", "cache.",
                         "telemetry.")


def _strip_operational_metrics(metrics: Optional[Dict[str, Any]]):
    """Drop operational series from an exported snapshot.

    Checkpoint, fault-plane, cache-health and sink-drop counters vary
    with kill timing and injected I/O weather; they stay visible in
    traces and the live registry, and only the deterministic export
    snapshot omits them.
    """
    if not metrics:
        return metrics
    for kind in ("counters", "gauges", "histograms"):
        series = metrics.get(kind)
        if isinstance(series, dict):
            metrics[kind] = {
                key: value for key, value in series.items()
                if not key.startswith(_OPERATIONAL_PREFIXES)
            }
    return metrics


def _drive(state: _LoopState, config: CampaignConfig, store=None,
           abort_hook: Optional[Callable[[int, float], bool]] = None,
           ) -> CampaignResult:
    """Run the (possibly restored) loop state to the horizon."""
    ctx = state.ctx
    mode = state.mode
    supervisor = state.supervisor
    target_cls = ctx.target_cls
    telemetry = ctx.telemetry
    coverage = state.coverage
    global_sites = state.global_sites
    horizon = config.duration_hours * 3600.0
    g_global_sites = telemetry.gauge("campaign.global_sites")
    g_sim_time = telemetry.gauge("campaign.sim_time")
    c_sync_rounds = telemetry.counter("campaign.sync_rounds")
    c_samples = telemetry.counter("campaign.samples")

    every = config.checkpoint_every
    next_checkpoint: Optional[float] = None
    if store is not None and every is not None:
        # Recomputed from simulated time, not carried in the state, so
        # a resumed loop lands on the same grid as an uninterrupted one.
        next_checkpoint = (math.floor(ctx.clock.now / every) + 1) * every

    with _InterruptWatch(store is not None) as watch:
        while ctx.clock.now < horizon:
            aborted = watch.triggered or (
                abort_hook is not None
                and abort_hook(state.iterations, ctx.clock.now)
            )
            if aborted:
                path = None
                if store is not None:
                    path = _save_checkpoint(store, state, reason="interrupt")
                saved = ("state saved" if path is not None else
                         "final save skipped, resume continues from the "
                         "last good checkpoint")
                raise CampaignInterrupted(
                    "campaign interrupted at %.0f simulated seconds "
                    "(%d iterations); %s — rerun with resume=True "
                    "(--resume) to continue"
                    % (ctx.clock.now, state.iterations, saved),
                    checkpoint_path=path,
                    sim_time=ctx.clock.now,
                    iterations=state.iterations,
                )
            if next_checkpoint is not None and ctx.clock.now >= next_checkpoint:
                _save_checkpoint(store, state, reason="periodic")
                while next_checkpoint <= ctx.clock.now:
                    next_checkpoint += every
            now = ctx.clock.now
            supervisor.poll(now)
            for instance in ctx.instances:
                if not instance.available(now):
                    continue
                result = instance.step()
                state.iterations += 1
                if result.new_sites:
                    global_sites.update(result.new_sites)
                mode.after_iteration(ctx, instance, result)
                if result.hung:
                    supervisor.handle_hang(instance, now)
                    continue
                supervisor.observe(instance, result, now)
                if result.fault:
                    ctx.bugs.record(
                        CrashReport.from_fault(
                            result.fault, target_cls.PROTOCOL,
                            sim_time=now, instance=instance.index,
                        )
                    )
                    supervisor.handle_crash(instance, now)
            ctx.clock.advance(config.costs.iteration)
            if ctx.clock.now >= state.next_sample:
                # The last iteration can overshoot the horizon; the curve
                # must not extend past it (the closing record(horizon)
                # below would then violate time ordering).
                coverage.record(min(ctx.clock.now, horizon),
                                len(global_sites))
                c_samples.inc()
                g_global_sites.set(len(global_sites))
                g_sim_time.set(ctx.clock.now)
                state.next_sample += config.sample_interval
            if ctx.clock.now >= state.next_sync:
                state.sync_rounds += 1
                c_sync_rounds.inc()
                with telemetry.span("campaign.sync", round=state.sync_rounds):
                    mode.on_sync(ctx)
                state.next_sync += config.sync_interval

    coverage.record(horizon, len(global_sites))
    g_global_sites.set(len(global_sites))
    g_sim_time.set(horizon)
    ctx.namespaces.destroy_all()
    if store is not None:
        # A completed campaign has nothing to resume; a surviving
        # checkpoint directory therefore always means "interrupted".
        store.clear()
    metrics = telemetry.snapshot() if telemetry.enabled else None
    metrics = _strip_operational_metrics(metrics)
    telemetry.close()
    injector = getattr(ctx, "io_injector", None)
    return CampaignResult(
        mode=mode.name,
        target=target_cls.NAME,
        coverage=coverage,
        bugs=ctx.bugs,
        instances=ctx.instances,
        startup_conflicts=ctx.startup_conflicts,
        iterations=state.iterations,
        supervisor_events=supervisor.events,
        metrics=metrics,
        io_faults=(injector.summary()
                   if injector is not None and injector.enabled else None),
    )


def run_campaign(
    target_cls,
    state_model: StateModel,
    mode: ParallelMode,
    config: Optional[CampaignConfig] = None,
    abort_hook: Optional[Callable[[int, float], bool]] = None,
) -> CampaignResult:
    """Run one parallel fuzzing campaign and return its results.

    With ``config.checkpoint_every`` set, the loop state is persisted
    every that-many simulated seconds and on SIGTERM/SIGINT (which then
    raise :class:`~repro.errors.CampaignInterrupted`);
    ``config.resume=True`` continues from the newest intact checkpoint
    when one exists. ``abort_hook(iterations, sim_time) -> bool`` is a
    test seam triggering the same interrupt path deterministically.

    ``mode`` is either a :class:`~repro.parallel.base.ParallelMode`
    instance or a registered mode name resolved through
    :mod:`repro.parallel.registry` with default arguments.
    """
    if isinstance(mode, str):
        from repro.parallel.registry import create_mode

        mode = create_mode(mode)
    config = config or CampaignConfig()
    store = None
    if config.checkpoint_every is not None or config.resume:
        from repro.harness.checkpoint import CheckpointStore, campaign_key

        # The campaign's injector only exists once the context does;
        # checkpoint loads performed before then run under a bootstrap
        # injector with the same plan, whose accounting is merged into
        # the campaign's once the state is ready.
        store = CheckpointStore(
            campaign_key(target_cls.NAME, mode.name, config),
            root=config.checkpoint_dir,
            keep=config.checkpoint_keep,
            target=target_cls.NAME,
            mode=mode.name,
            injector=FaultInjector.from_campaign_config(config),
        )
    state = None
    if store is not None and config.resume:
        payload = store.load_latest()
        if payload is not None:
            state = payload.state
            telemetry = state.ctx.telemetry
            telemetry.counter("checkpoint.resumes").inc()
            telemetry.event("checkpoint.resume", sequence=payload.sequence,
                            iterations=payload.iterations)
    if state is None:
        state = _fresh_state(target_cls, state_model, mode, config)
    if store is not None:
        # One canonical injector per campaign: fold the bootstrap
        # loads' accounting in, point the store (and, after a restore,
        # the reopened trace sink) at the campaign's injector.
        injector = state.ctx.io_injector
        injector.absorb(store.injector)
        store.injector = injector
        sink = state.ctx.telemetry.sink
        if sink is not None and injector.enabled:
            sink.injector = injector
    return _drive(state, config, store=store, abort_hook=abort_hook)


def run_repeated(
    target_cls,
    state_model_factory: Callable[[], StateModel],
    mode_factory: Callable[[], ParallelMode],
    repetitions: int = 5,
    config: Optional[CampaignConfig] = None,
) -> List[CampaignResult]:
    """Repeat a campaign with distinct seeds (the paper runs five)."""
    base = config or CampaignConfig()
    results = []
    for repetition in range(repetitions):
        rep_config = dataclasses.replace(base, seed=base.seed + repetition * 101)
        results.append(
            run_campaign(target_cls, state_model_factory(), mode_factory(), rep_config)
        )
    return results
