"""The campaign runner: drives N parallel instances for a simulated day.

Reproduces the paper's experimental loop: a mode (Peach / SPFuzz /
CMFuzz) sets up four isolated instances which fuzz for 24 simulated
hours; the harness tracks the global branch-coverage time series (the
union across instances), triages crashes into a deduplicated bug ledger,
and restarts crashed targets with the appropriate simulated downtime.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Set

from repro.errors import HarnessError, StartupError
from repro.fuzzing.statemodel import StateModel
from repro.fuzzing.strategies import MutationStrategy, RandomFieldStrategy
from repro.harness.simclock import CostModel, SimClock
from repro.harness.stats import TimeSeries
from repro.netns.namespace import NamespaceManager
from repro.parallel.base import ParallelMode
from repro.parallel.instance import FuzzingInstance
from repro.targets.faults import BugLedger, CrashReport, SanitizerFault


@dataclass
class CampaignConfig:
    """Knobs for one campaign run."""

    n_instances: int = 4
    duration_hours: float = 24.0
    seed: int = 0
    costs: CostModel = field(default_factory=CostModel)
    sample_interval: float = 600.0
    sync_interval: float = 600.0
    strategy_factory: Callable[[], MutationStrategy] = RandomFieldStrategy

    def __post_init__(self):
        if self.n_instances < 1:
            raise HarnessError("need at least one instance")
        if self.duration_hours <= 0:
            raise HarnessError("duration must be positive")


@dataclass
class CampaignResult:
    """Everything a campaign produces."""

    mode: str
    target: str
    coverage: TimeSeries
    bugs: BugLedger
    instances: List[FuzzingInstance]
    startup_conflicts: int = 0
    iterations: int = 0

    @property
    def final_coverage(self) -> int:
        return int(self.coverage.final_value)

    def unique_bug_count(self) -> int:
        return len(self.bugs)


class _CampaignContext:
    """The state bag parallel modes interact with."""

    def __init__(self, target_cls, state_model: StateModel, config: CampaignConfig):
        self.target_cls = target_cls
        self.state_model = state_model
        self.n_instances = config.n_instances
        self.seed = config.seed
        self.costs = config.costs
        self.clock = SimClock()
        self.namespaces = NamespaceManager()
        self.instances: List[FuzzingInstance] = []
        self.bugs = BugLedger()
        self.startup_conflicts = 0
        self._strategy_factory = config.strategy_factory

    def make_strategy(self) -> MutationStrategy:
        return self._strategy_factory()

    def record_startup_fault(self, fault: SanitizerFault, instance: int) -> None:
        self.bugs.record(
            CrashReport.from_fault(
                fault, self.target_cls.PROTOCOL,
                sim_time=self.clock.now, instance=instance,
            )
        )


def _safe_initial_start(ctx: _CampaignContext, instance: FuzzingInstance) -> None:
    """Boot an instance, degrading toward the default configuration.

    The initial bundle is built from first typical values, which embed the
    source defaults, so this almost always succeeds on the first try;
    conflicting groups shed keys until the target boots.
    """
    assignment = dict(instance.bundle.assignment)
    for _ in range(len(assignment) + 1):
        try:
            instance.restart(assignment)
            return
        except StartupError as error:
            ctx.startup_conflicts += 1
            dropped = False
            for key in error.conflicting:
                if key in assignment:
                    del assignment[key]
                    dropped = True
            if not dropped and assignment:
                assignment.popitem()
        except SanitizerFault as fault:
            ctx.record_startup_fault(fault, instance=instance.index)
            if assignment:
                assignment.popitem()
    instance.restart({})


def run_campaign(
    target_cls,
    state_model: StateModel,
    mode: ParallelMode,
    config: Optional[CampaignConfig] = None,
) -> CampaignResult:
    """Run one parallel fuzzing campaign and return its results."""
    config = config or CampaignConfig()
    ctx = _CampaignContext(target_cls, state_model, config)
    ctx.instances = mode.create_instances(ctx)
    for instance in ctx.instances:
        _safe_initial_start(ctx, instance)

    horizon = config.duration_hours * 3600.0
    coverage = TimeSeries()
    global_sites: Set[str] = set()
    for instance in ctx.instances:
        global_sites.update(instance.collector.total.sites())
    coverage.record(ctx.clock.now, len(global_sites))

    next_sample = ctx.clock.now + config.sample_interval
    next_sync = ctx.clock.now + config.sync_interval
    iterations = 0

    while ctx.clock.now < horizon:
        now = ctx.clock.now
        for instance in ctx.instances:
            if not instance.available(now):
                continue
            result = instance.step()
            iterations += 1
            if result.new_sites:
                global_sites.update(result.new_sites)
            mode.after_iteration(ctx, instance, result)
            if result.fault:
                ctx.bugs.record(
                    CrashReport.from_fault(
                        result.fault, target_cls.PROTOCOL,
                        sim_time=now, instance=instance.index,
                    )
                )
                instance.down_until = now + config.costs.crash_restart
                try:
                    instance.restart(dict(instance.bundle.assignment))
                except StartupError:
                    instance.dead = True
                except SanitizerFault as fault:
                    ctx.record_startup_fault(fault, instance=instance.index)
                    instance.dead = True
        ctx.clock.advance(config.costs.iteration)
        if ctx.clock.now >= next_sample:
            coverage.record(ctx.clock.now, len(global_sites))
            next_sample += config.sample_interval
        if ctx.clock.now >= next_sync:
            mode.on_sync(ctx)
            next_sync += config.sync_interval

    coverage.record(horizon, len(global_sites))
    ctx.namespaces.destroy_all()
    return CampaignResult(
        mode=mode.name,
        target=target_cls.NAME,
        coverage=coverage,
        bugs=ctx.bugs,
        instances=ctx.instances,
        startup_conflicts=ctx.startup_conflicts,
        iterations=iterations,
    )


def run_repeated(
    target_cls,
    state_model_factory: Callable[[], StateModel],
    mode_factory: Callable[[], ParallelMode],
    repetitions: int = 5,
    config: Optional[CampaignConfig] = None,
) -> List[CampaignResult]:
    """Repeat a campaign with distinct seeds (the paper runs five)."""
    base = config or CampaignConfig()
    results = []
    for repetition in range(repetitions):
        rep_config = CampaignConfig(
            n_instances=base.n_instances,
            duration_hours=base.duration_hours,
            seed=base.seed + repetition * 101,
            costs=base.costs,
            sample_interval=base.sample_interval,
            sync_interval=base.sync_interval,
            strategy_factory=base.strategy_factory,
        )
        results.append(
            run_campaign(target_cls, state_model_factory(), mode_factory(), rep_config)
        )
    return results
