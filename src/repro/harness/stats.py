"""Coverage time series and the paper's Speedup metric."""

from __future__ import annotations

import math
from bisect import bisect_right
from typing import List, Optional, Sequence, Tuple


class TimeSeries:
    """A step function of (sim_time, value) samples, non-decreasing time."""

    def __init__(self):
        self._points: List[Tuple[float, float]] = []
        #: Recorded times, kept alongside for O(log n) bisect lookups.
        self._times: List[float] = []

    def record(self, time: float, value: float) -> None:
        if self._points and time < self._points[-1][0]:
            raise ValueError("time series must be recorded in time order")
        self._points.append((time, value))
        self._times.append(time)

    def points(self) -> List[Tuple[float, float]]:
        return list(self._points)

    @property
    def final_value(self) -> float:
        return self._points[-1][1] if self._points else 0.0

    @property
    def final_time(self) -> float:
        return self._points[-1][0] if self._points else 0.0

    def value_at(self, time: float) -> float:
        """Step-function evaluation: the last value at or before ``time``.

        O(log n) via bisect over the recorded times (``sample`` calls
        this once per grid point; a linear scan made long-horizon grids
        quadratic).
        """
        index = bisect_right(self._times, time) - 1
        return self._points[index][1] if index >= 0 else 0.0

    def time_to_reach(self, value: float) -> Optional[float]:
        """First time the series reaches at least ``value`` (None if never)."""
        for t, v in self._points:
            if v >= value:
                return t
        return None

    def sample(self, interval: float, horizon: float) -> List[Tuple[float, float]]:
        """Resample onto a uniform grid for plotting (Figure 4).

        Grid points are indexed as ``i * interval`` rather than by a
        running ``t += interval`` sum, whose accumulated float error
        dropped or shifted the final grid point on long horizons (e.g.
        86400 s at 0.1 s spacing drifts by microseconds — past the old
        1e-9 tolerance).
        """
        if interval <= 0:
            raise ValueError("interval must be positive")
        steps = int(math.floor(horizon / interval + 1e-9))
        return [
            (i * interval, self.value_at(i * interval))
            for i in range(steps + 1)
        ]

    def __len__(self) -> int:
        return len(self._points)

    def __repr__(self) -> str:
        return "TimeSeries(%d points, final=%.0f)" % (len(self._points), self.final_value)


def mean(values: Sequence[float]) -> float:
    """Arithmetic mean (0.0 for empty input)."""
    values = list(values)
    return sum(values) / len(values) if values else 0.0


def speedup(baseline: TimeSeries, contender: TimeSeries,
            floor: float = 1.0) -> float:
    """The paper's Speedup metric (Table I).

    Baseline's time to reach *its own* final coverage, divided by the
    contender's time to reach that same coverage level. Returns the ratio
    capped below at 0 and is ``float('inf')`` if the contender starts at
    or above the baseline's final coverage at time ~0; callers clamp with
    ``floor`` (the minimum contender time) to keep ratios finite.
    """
    target = baseline.final_value
    if target <= 0:
        return 1.0
    baseline_time = baseline.time_to_reach(target)
    contender_time = contender.time_to_reach(target)
    if baseline_time is None:
        return 1.0
    if contender_time is None:
        # Contender never got there: speedup below 1 expressed as the
        # fraction of the budget it covered.
        reached = contender.final_value
        return max(reached / target, 0.0)
    return baseline_time / max(contender_time, floor)
