"""Crash-safe campaign checkpoints: periodic, atomic, versioned.

The paper's headline experiments are 24-hour campaigns; a worker crash
or preemption should continue the cell, not rerun it. This module
persists the *entire* live loop state — engine RNG streams, sim-clock,
per-instance corpus and coverage maps, scheduler/allocation state
(CMFuzz entity groups and mutation cursors, SPFuzz path partitions),
seed-sync outboxes, supervisor circuit-breaker state, the bug ledger
and the telemetry registry — as one pickled object graph, so shared
references survive and a resumed campaign is *byte-identical* to an
uninterrupted one.

Layout, under ``.cmfuzz-cache/checkpoints/<campaign-key>/``::

    ckpt-000001.pkl     one pickled _LoopState per save
    ckpt-000002.pkl
    MANIFEST.json       schema_version, campaign key, sha256 per file

Durability contract:

- every write is temp-file + ``os.replace`` (both blob and manifest),
  so a kill mid-save can never tear an entry;
- :meth:`CheckpointStore.load_latest` verifies each blob against its
  manifest sha256 and falls back newest → oldest on any corruption;
  a corrupt manifest degrades to a directory scan — resume never
  crashes on damaged state, it just loses at most the damaged saves;
- the manifest and every blob carry
  :data:`CHECKPOINT_SCHEMA_VERSION`; a mismatch raises
  :class:`~repro.errors.SchemaVersionError` instead of
  mis-deserializing an old layout.

The campaign key hashes everything that determines the run (target,
mode, config, seed) *except* the checkpoint/resume knobs themselves,
so ``--resume`` finds the state no matter how checkpointing was
spelled on the interrupted invocation.
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
import re
import shutil
from dataclasses import dataclass
from typing import Any, List, Optional

from repro.cache import UNPICKLE_ERRORS, canonical_payload, default_cache_dir
from repro.errors import CheckpointError, SchemaVersionError
from repro.faultplane import (
    FAULT_CORRUPT,
    FAULT_SLOW,
    FAULT_TRANSIENT,
    NULL_INJECTOR,
    IoGiveUp,
    corrupt_bytes,
)

__all__ = [
    "CHECKPOINT_SCHEMA_VERSION",
    "CheckpointPayload",
    "CheckpointStore",
    "campaign_key",
    "default_checkpoint_root",
]

#: Bumped whenever the checkpoint blob or manifest layout changes; old
#: artifacts are rejected with :class:`SchemaVersionError`, not guessed at.
#: 2: the pickled campaign context gained the fault-plane injector.
CHECKPOINT_SCHEMA_VERSION = 2

_MANIFEST_NAME = "MANIFEST.json"
_BLOB_PATTERN = re.compile(r"^ckpt-(\d+)\.pkl$")

#: Config fields excluded from the campaign key: they select *whether*
#: and *where* to checkpoint — or which infrastructure faults to
#: inject — not what the campaign computes. (The fault plane's headline
#: invariant is exactly that io-chaos never changes results.)
_KEY_EXCLUDED_FIELDS = frozenset(
    ["checkpoint_every", "checkpoint_dir", "checkpoint_keep", "resume",
     "io_chaos_level", "io_chaos_seed", "strict_io"]
)


def default_checkpoint_root() -> str:
    """Checkpoints live beside the result/probe caches."""
    return os.path.join(default_cache_dir(), "checkpoints")


def campaign_key(target: str, mode: str, config: Any) -> str:
    """Stable content hash identifying one campaign's checkpoint stream.

    Derived from the target, mode and every config field that shapes
    the run; the checkpoint/resume knobs themselves are excluded so an
    interrupted ``--checkpoint-every 600`` run and its ``--resume``
    rerun agree on the key.
    """
    payload = canonical_payload(config)
    if isinstance(payload, dict):
        payload = {k: v for k, v in payload.items()
                   if k not in _KEY_EXCLUDED_FIELDS}
    digest = hashlib.sha256(json.dumps(
        {
            "version": CHECKPOINT_SCHEMA_VERSION,
            "target": target,
            "mode": mode,
            "config": payload,
        },
        sort_keys=True,
    ).encode("utf-8"))
    return digest.hexdigest()


@dataclass
class CheckpointPayload:
    """One restored checkpoint: the loop state plus its provenance."""

    schema_version: int
    key: str
    sequence: int
    sim_time: float
    iterations: int
    state: Any


class CheckpointStore:
    """Atomic keep-N checkpoint stream for one campaign key.

    Writes are temp + rename (blob first, then manifest), loads verify
    sha256 digests and degrade newest → oldest; ``clear()`` removes the
    stream once the campaign completes, so a surviving directory always
    means "interrupted, resumable".
    """

    def __init__(self, key: str, root: Optional[str] = None, keep: int = 3,
                 target: str = "", mode: str = "", injector=None):
        if keep < 1:
            raise CheckpointError("need to keep at least one checkpoint")
        self.key = key
        self.root = root or default_checkpoint_root()
        self.directory = os.path.join(self.root, key)
        self.keep = keep
        self.target = target
        self.mode = mode
        self.injector = injector or NULL_INJECTOR

    # -- paths ---------------------------------------------------------------

    def _manifest_path(self) -> str:
        return os.path.join(self.directory, _MANIFEST_NAME)

    def _blob_path(self, sequence: int) -> str:
        return os.path.join(self.directory, "ckpt-%06d.pkl" % sequence)

    # -- manifest ------------------------------------------------------------

    def _read_manifest(self) -> Optional[dict]:
        """The parsed manifest, ``None`` when absent or unreadable."""
        try:
            with open(self._manifest_path(), "r", encoding="utf-8") as handle:
                manifest = json.load(handle)
        except (OSError, ValueError):
            return None
        if not isinstance(manifest, dict):
            return None
        version = manifest.get("schema_version")
        if version != CHECKPOINT_SCHEMA_VERSION:
            raise SchemaVersionError(
                "checkpoint manifest %r" % self._manifest_path(),
                version, CHECKPOINT_SCHEMA_VERSION,
            )
        return manifest

    def _write_manifest(self, entries: List[dict]) -> None:
        manifest = {
            "schema_version": CHECKPOINT_SCHEMA_VERSION,
            "campaign_key": self.key,
            "target": self.target,
            "mode": self.mode,
            "checkpoints": entries,
        }
        path = self._manifest_path()
        temp = "%s.tmp.%d" % (path, os.getpid())
        with open(temp, "w", encoding="utf-8") as handle:
            json.dump(manifest, handle, indent=2, sort_keys=True)
        os.replace(temp, path)

    # -- save ----------------------------------------------------------------

    def save(self, state: Any, sim_time: float, iterations: int) -> str:
        """Persist one checkpoint atomically; returns the blob path."""
        os.makedirs(self.directory, exist_ok=True)
        try:
            manifest = self._read_manifest()
        except SchemaVersionError:
            # An old-layout stream cannot be extended; start it over.
            manifest = None
        entries = list(manifest.get("checkpoints", [])) if manifest else []
        sequence = 1 + max(
            [e.get("sequence", 0) for e in entries] + [self._scan_top()]
        )
        payload = CheckpointPayload(
            schema_version=CHECKPOINT_SCHEMA_VERSION,
            key=self.key,
            sequence=sequence,
            sim_time=sim_time,
            iterations=iterations,
            state=state,
        )
        blob = pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)
        path = self._blob_path(sequence)
        temp = "%s.tmp.%d" % (path, os.getpid())
        entries = entries + [{
            "file": os.path.basename(path),
            "sha256": hashlib.sha256(blob).hexdigest(),
            "sequence": sequence,
            "sim_time": sim_time,
            "iterations": iterations,
        }]
        entries = entries[-self.keep:]

        def write() -> None:
            # Idempotent under retry: both writes are temp + rename.
            with open(temp, "wb") as handle:
                handle.write(blob)
            os.replace(temp, path)
            self._write_manifest(entries)

        try:
            self.injector.run("checkpoint.save", write,
                              kinds=(FAULT_TRANSIENT, FAULT_SLOW))
        except (IoGiveUp, OSError) as exc:
            raise CheckpointError(
                "cannot write checkpoint %r (%s)" % (path, exc)
            )
        self._prune(entries)
        return path

    def _scan_top(self) -> int:
        """Highest sequence present on disk (manifest-independent)."""
        top = 0
        try:
            names = os.listdir(self.directory)
        except OSError:
            return top
        for name in names:
            match = _BLOB_PATTERN.match(name)
            if match:
                top = max(top, int(match.group(1)))
        return top

    def _prune(self, entries: List[dict]) -> None:
        """Delete blobs that fell out of the keep-N manifest window."""
        kept = {entry["file"] for entry in entries}
        try:
            names = os.listdir(self.directory)
        except OSError:
            return
        for name in names:
            if _BLOB_PATTERN.match(name) and name not in kept:
                try:
                    os.remove(os.path.join(self.directory, name))
                except OSError:
                    pass

    # -- load ----------------------------------------------------------------

    def _load_blob(self, path: str,
                   expect_sha: Optional[str]) -> Optional[CheckpointPayload]:
        """One verified payload, or ``None`` on any corruption."""

        def read() -> Optional[bytes]:
            try:
                with open(path, "rb") as handle:
                    return handle.read()
            except FileNotFoundError:
                return None

        # A read that fails verification is re-read before the blob is
        # written off: the file on disk may be healthy even when one
        # read of it was damaged (an injected corrupt-on-read, a torn
        # page). Only bytes that stay bad across the retry budget fall
        # back to the next-older save.
        payload = None
        for _ in range(self.injector.backoff.max_attempts):
            try:
                blob = self.injector.run(
                    "checkpoint.load", read,
                    kinds=(FAULT_TRANSIENT, FAULT_SLOW, FAULT_CORRUPT),
                    on_corrupt=corrupt_bytes,
                )
            except (IoGiveUp, OSError):
                return None
            if blob is None:
                return None
            if expect_sha is not None:
                if hashlib.sha256(blob).hexdigest() != expect_sha:
                    continue
            try:
                payload = pickle.loads(blob)
            except UNPICKLE_ERRORS:
                # The concrete unpickling error set (see repro.cache);
                # a failure that survives every re-read means a damaged
                # blob, and load_latest falls back to an older save.
                continue
            break
        if payload is None:
            return None
        if not isinstance(payload, CheckpointPayload):
            return None
        if payload.schema_version != CHECKPOINT_SCHEMA_VERSION:
            raise SchemaVersionError("checkpoint %r" % path,
                                     payload.schema_version,
                                     CHECKPOINT_SCHEMA_VERSION)
        if payload.key != self.key:
            return None
        return payload

    def load_latest(self) -> Optional[CheckpointPayload]:
        """The newest intact checkpoint, or ``None`` when there is none.

        Tries manifest entries newest → oldest, skipping any blob whose
        sha256 or unpickling fails; when the manifest itself is damaged
        falls back to scanning the directory. Only a schema-version
        mismatch raises — every corruption mode degrades silently to an
        older save (or a fresh start).
        """
        manifest = self._read_manifest()
        if manifest is not None:
            for entry in reversed(manifest.get("checkpoints", [])):
                if not isinstance(entry, dict):
                    continue
                path = os.path.join(self.directory, str(entry.get("file")))
                payload = self._load_blob(path, entry.get("sha256"))
                if payload is not None:
                    return payload
            return None
        # Manifest missing/corrupt: recover what the blobs themselves hold.
        try:
            names = os.listdir(self.directory)
        except OSError:
            return None
        candidates = sorted(
            (int(m.group(1)), name)
            for name in names
            for m in [_BLOB_PATTERN.match(name)] if m
        )
        for _, name in reversed(candidates):
            payload = self._load_blob(os.path.join(self.directory, name), None)
            if payload is not None:
                return payload
        return None

    # -- lifecycle -----------------------------------------------------------

    def clear(self) -> None:
        """Drop the stream (the campaign completed; nothing to resume)."""
        shutil.rmtree(self.directory, ignore_errors=True)
