"""Deterministic fault injection for the harness's own I/O boundaries.

:mod:`repro.targets.chaos` makes the *fuzzing targets* flaky; this
module makes the *infrastructure* flaky — the result cache, the probe
cache, the checkpoint store, the worker pool and the telemetry sink —
and carries the policies that keep a campaign's exports byte-identical
anyway. The invariant every boundary enforces: faults may cost time,
never results.

Three pieces:

- :class:`FaultPlan` — a frozen, picklable, seeded schedule. Whether
  operation ``op_index`` at boundary ``site`` faults (and how) is a pure
  function of ``(seed, site, op_index)``: a sha256-derived unit draw
  against ``level``, then a second draw picking among the fault kinds
  the call site can honour (transient ``OSError``, slow write,
  corrupt-on-read, worker death). The same plan replays the same
  weather, independent of wall clock, PID or dict order.
- :class:`BackoffPolicy` — the bounded-retry schedule for transients:
  exponential backoff with deterministic seeded jitter, so tests can
  assert the exact attempt times.
- :class:`FaultInjector` — the per-campaign stateful wrapper call sites
  consult. :meth:`FaultInjector.run` executes one I/O operation under
  the plan: injected and *real* transient ``OSError`` alike are retried
  on the backoff schedule, and exhaustion either re-raises the original
  error (``strict`` — the ``--strict-io`` escape hatch) or raises
  :class:`IoGiveUp` for the boundary to catch and degrade gracefully.

Retry delays are charged to a private virtual clock, **never** to the
campaign's simulated clock: sim time is part of the exported coverage
series, so a retry that advanced it would violate the byte-identical
invariant (and make fault-storm tests slow). Wire a real ``sleep`` in
via ``clock`` if wall-clock backoff is ever wanted.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Any, Callable, Dict, Optional, Sequence, Tuple

from repro.errors import HarnessError
from repro.telemetry import NULL_TELEMETRY

__all__ = [
    "FAULT_CORRUPT",
    "FAULT_KINDS",
    "FAULT_SLOW",
    "FAULT_TRANSIENT",
    "FAULT_WORKER_DEATH",
    "BackoffPolicy",
    "FaultInjector",
    "FaultPlan",
    "InjectedIOError",
    "IoGiveUp",
    "NULL_INJECTOR",
    "RetryClock",
    "corrupt_bytes",
]

#: A transient I/O error: the op is retried on the backoff schedule.
FAULT_TRANSIENT = "transient"
#: The op succeeds but is slow; the delay is charged to the retry clock.
FAULT_SLOW = "slow"
#: A read returns damaged bytes (exercises quarantine / sha fallback).
FAULT_CORRUPT = "corrupt"
#: A pool worker dies before shipping a result (pool sites only).
FAULT_WORKER_DEATH = "worker-death"

FAULT_KINDS = (FAULT_TRANSIENT, FAULT_SLOW, FAULT_CORRUPT, FAULT_WORKER_DEATH)


class RetryClock:
    """The injector's private virtual clock for retry/slow-fault time.

    Deliberately *not* the campaign's :class:`repro.harness.simclock.
    SimClock` (same contract, zero imports): backoff charged here is
    observable to tests and telemetry but invisible to the simulated
    campaign timeline, which is part of the exported byte stream.
    """

    def __init__(self, start: float = 0.0):
        self._now = float(start)

    @property
    def now(self) -> float:
        return self._now

    def advance(self, seconds: float) -> float:
        if seconds < 0:
            raise HarnessError("cannot advance the retry clock backwards")
        self._now += seconds
        return self._now


class InjectedIOError(OSError):
    """An injected transient fault, distinguishable from real weather."""


class IoGiveUp(HarnessError):
    """Retries exhausted on one I/O op; the boundary decides how to degrade.

    Attributes:
        site: The boundary that gave up.
        original: The final error of the retry sequence.
    """

    def __init__(self, site: str, original: BaseException):
        self.site = site
        self.original = original
        super().__init__(
            "I/O retries exhausted at %s: %s" % (site, original))


def _unit(seed: int, site: str, op_index: int, salt: str) -> float:
    """A deterministic draw in [0, 1) keyed by ``(seed, site, op, salt)``."""
    digest = hashlib.sha256(
        ("%d\x1f%s\x1f%d\x1f%s" % (seed, site, op_index, salt)).encode("utf-8")
    ).digest()
    return int.from_bytes(digest[:8], "big") / float(1 << 64)


def corrupt_bytes(blob: Optional[bytes]) -> Optional[bytes]:
    """Deterministically damage a read payload (the corrupt-on-read fault).

    Zeroes the leading bytes, which breaks any pickle stream and any
    sha256 manifest check while keeping the length plausible.
    """
    if blob is None:
        return None
    head = min(len(blob), 16)
    return b"\x00" * head + blob[head:]


@dataclass(frozen=True)
class BackoffPolicy:
    """Bounded exponential backoff with deterministic seeded jitter.

    ``delay(seed, site, attempt)`` for attempt ``n`` (1-based, the wait
    *before* retry ``n``) is ``min(base * multiplier**(n-1), max_delay)``
    stretched by up to ``jitter`` of itself — the stretch drawn from the
    same sha256 stream as the fault plan, so two runs with one seed wait
    identically and tests can assert the exact schedule.
    """

    max_attempts: int = 4
    base_delay: float = 0.05
    multiplier: float = 2.0
    max_delay: float = 2.0
    jitter: float = 0.25

    def __post_init__(self):
        if self.max_attempts < 1:
            raise HarnessError("need at least one attempt")

    def delay(self, seed: int, site: str, attempt: int) -> float:
        """Seconds to wait before retry ``attempt`` (1-based)."""
        base = min(self.base_delay * self.multiplier ** (attempt - 1),
                   self.max_delay)
        return base * (1.0 + self.jitter * _unit(seed, site, attempt, "jitter"))

    def schedule(self, seed: int, site: str) -> Tuple[float, ...]:
        """Every retry delay this policy would apply at ``site``."""
        return tuple(self.delay(seed, site, attempt)
                     for attempt in range(1, self.max_attempts))


@dataclass(frozen=True)
class FaultPlan:
    """A picklable, seeded infrastructure-fault schedule.

    ``decide(site, op_index, kinds)`` is pure: the same plan always
    faults the same operations the same way, so a campaign replayed
    under one plan sees identical weather regardless of process layout.
    """

    seed: int = 0
    level: float = 0.0

    def __post_init__(self):
        if not 0.0 <= self.level <= 1.0:
            raise HarnessError(
                "io-chaos level must be in [0, 1], got %r" % (self.level,))

    @property
    def enabled(self) -> bool:
        return self.level > 0.0

    def decide(self, site: str, op_index: int,
               kinds: Sequence[str]) -> Optional[str]:
        """The fault kind injected into this operation, or ``None``.

        ``kinds`` lists what the call site can honour (a cache write
        cannot corrupt-on-read); the whether-to-fault draw is
        kind-independent so injected-op counts can be recomputed from
        ``(seed, level, site, op_index)`` alone.
        """
        if not kinds or not self.enabled:
            return None
        if _unit(self.seed, site, op_index, "inject") >= self.level:
            return None
        pick = int(_unit(self.seed, site, op_index, "kind") * len(kinds))
        return kinds[min(pick, len(kinds) - 1)]


class FaultInjector:
    """Per-campaign fault-plan executor: consult, inject, retry, account.

    One injector is shared by every boundary of a campaign; each site
    keeps its own operation counter so the plan's ``(site, op_index)``
    keying is stable. The whole object pickles (it crosses the
    checkpoint boundary inside the loop state) — ``telemetry`` must be
    a picklable :class:`repro.telemetry.Telemetry`.

    Args:
        plan: The fault schedule; the default injects nothing.
        telemetry: Counters/events sink (``faultplane.*``; stripped from
            export snapshots, visible live and in traces). May be
            rebound after construction once the campaign telemetry
            exists.
        strict: The ``--strict-io`` escape hatch — retries still run,
            but exhaustion re-raises the original error instead of
            signalling :class:`IoGiveUp`, restoring fail-fast.
        backoff: Retry schedule for transient errors.
        clock: The virtual retry clock; defaults to a private
            :class:`RetryClock` so retries never consume real time nor
            the campaign's simulated time.
    """

    def __init__(self, plan: Optional[FaultPlan] = None, telemetry=None,
                 strict: bool = False, backoff: Optional[BackoffPolicy] = None,
                 clock: Optional[RetryClock] = None):
        self.plan = plan or FaultPlan()
        self.telemetry = telemetry or NULL_TELEMETRY
        self.strict = strict
        self.backoff = backoff or BackoffPolicy()
        self.clock = clock or RetryClock()
        #: Per-site operation counters (the plan's op_index stream).
        self.ops: Dict[str, int] = {}
        #: Per-site injected-fault counts by kind.
        self.injected: Dict[str, Dict[str, int]] = {}

    @classmethod
    def from_campaign_config(cls, config: Any) -> "FaultInjector":
        """The injector a campaign config describes (possibly a no-op)."""
        return cls(
            plan=FaultPlan(seed=getattr(config, "io_chaos_seed", 0),
                           level=getattr(config, "io_chaos_level", 0.0)),
            strict=getattr(config, "strict_io", False),
        )

    @property
    def enabled(self) -> bool:
        return self.plan.enabled

    def summary(self) -> Dict[str, Any]:
        """Accounting snapshot: ops consulted and faults injected per site."""
        return {
            "seed": self.plan.seed,
            "level": self.plan.level,
            "ops": dict(self.ops),
            "injected": {site: dict(kinds)
                         for site, kinds in self.injected.items()},
        }

    def absorb(self, other: "FaultInjector") -> None:
        """Merge another injector's accounting (pre-resume store loads)."""
        if other is self:
            return
        for site, count in other.ops.items():
            self.ops[site] = self.ops.get(site, 0) + count
        for site, kinds in other.injected.items():
            mine = self.injected.setdefault(site, {})
            for kind, count in kinds.items():
                mine[kind] = mine.get(kind, 0) + count

    def fault_for(self, site: str, kinds: Sequence[str]) -> Optional[str]:
        """Consult the plan for the next operation at ``site``."""
        if not self.enabled:
            return None
        op_index = self.ops.get(site, 0)
        self.ops[site] = op_index + 1
        kind = self.plan.decide(site, op_index, kinds)
        if kind is None:
            return None
        per_site = self.injected.setdefault(site, {})
        per_site[kind] = per_site.get(kind, 0) + 1
        self.telemetry.counter("faultplane.injected",
                               site=site, kind=kind).inc()
        if not site.startswith("telemetry."):
            # Sink faults must not emit through the sink being faulted.
            self.telemetry.event("faultplane.injected", site=site, kind=kind,
                                 op=op_index)
        return kind

    def run(self, site: str, fn: Callable[[], Any],
            kinds: Sequence[str] = (FAULT_TRANSIENT,),
            on_corrupt: Optional[Callable[[Any], Any]] = None) -> Any:
        """Execute one I/O operation under the plan's weather.

        Injected transients and real ``OSError`` alike are retried up to
        ``backoff.max_attempts`` times with backoff charged to the
        virtual clock. A slow fault charges ``backoff.max_delay`` and
        proceeds; a corrupt fault maps the successful result through
        ``on_corrupt``.

        Raises:
            IoGiveUp: Retries exhausted (``strict=False``); carries the
                original error for the boundary's degradation path.
            OSError: The original error, when ``strict`` (fail-fast).
        """
        last_error: Optional[BaseException] = None
        for attempt in range(self.backoff.max_attempts):
            if attempt:
                self.telemetry.counter("faultplane.retries", site=site).inc()
                self.clock.advance(
                    self.backoff.delay(self.plan.seed, site, attempt))
            kind = self.fault_for(site, kinds)
            try:
                if kind == FAULT_TRANSIENT:
                    raise InjectedIOError(
                        "faultplane: injected transient I/O error at %s"
                        % site)
                result = fn()
            except OSError as exc:
                last_error = exc
                continue
            if kind == FAULT_SLOW:
                self.clock.advance(self.backoff.max_delay)
            if kind == FAULT_CORRUPT and on_corrupt is not None:
                result = on_corrupt(result)
            return result
        assert last_error is not None
        if self.strict:
            raise last_error
        raise IoGiveUp(site, last_error)


#: The shared disabled injector: consults nothing, injects nothing, but
#: still applies the retry/degrade contract to *real* I/O errors.
NULL_INJECTOR = FaultInjector()
