#!/usr/bin/env python3
"""Author a Pit in XML, fuzz with it, and persist the seed corpus.

Shows the Peach-compatible workflow: a hand-written Pit XML document is
loaded into data/state models, drives a fuzzing session against the DNS
server, and the interesting seeds are saved and reloaded — resuming a
later session from prior discoveries.

    python examples/custom_pit.py
"""

import tempfile

from repro.fuzzing.corpus import load_corpus_file, save_corpus_file
from repro.fuzzing.engine import DirectTransport, FuzzEngine
from repro.fuzzing.pitxml import load_pit
from repro.targets.dns.server import DnsmasqTarget

PIT_XML = """
<Peach>
  <DataModel name="Query">
    <Number name="id" size="16" value="0x1a2b"/>
    <Number name="flags" size="16" value="0x0100"/>
    <Number name="qdcount" size="16" value="1"/>
    <Number name="ancount" size="16" value="0"/>
    <Number name="nscount" size="16" value="0"/>
    <Number name="arcount" size="16" value="0"/>
    <Blob name="qname" valueHex="077072696e746572036c616e00"/>
    <Number name="qtype" size="16" value="1"/>
    <Number name="qclass" size="16" value="1"/>
  </DataModel>
  <StateModel name="dns-custom" initialState="query">
    <State name="query">
      <Action type="send" dataModel="Query"/>
      <Transition to="again" weight="2"/>
      <Transition to="done" weight="1"/>
    </State>
    <State name="again">
      <Action type="send" dataModel="Query"/>
      <Transition to="done" weight="1"/>
    </State>
    <State name="done"/>
  </StateModel>
</Peach>
"""


def main():
    pit = load_pit(PIT_XML)
    print("loaded pit %r: states=%s, data models=%s"
          % (pit.name, pit.states(), [m.name for m in pit.data_models()]))

    target = DnsmasqTarget()
    target.startup({})
    engine = FuzzEngine(pit, DirectTransport(target), target.cov, seed=3)
    for _ in range(2000):
        engine.run_iteration()
    print("session 1: %d branches, %d seeds in corpus"
          % (len(target.cov.total), len(engine.corpus)))

    with tempfile.NamedTemporaryFile(suffix=".json", delete=False) as handle:
        corpus_path = handle.name
    save_corpus_file(engine.corpus, corpus_path)
    print("corpus saved to", corpus_path)

    # A later session resumes from the persisted seeds.
    fresh_target = DnsmasqTarget()
    fresh_target.startup({})
    resumed = FuzzEngine(pit, DirectTransport(fresh_target),
                         fresh_target.cov, seed=4)
    for seed in load_corpus_file(pit, corpus_path):
        resumed.add_seed(seed)
    for _ in range(500):
        resumed.run_iteration()
    print("session 2 (resumed): %d branches after 500 iterations"
          % len(fresh_target.cov.total))


if __name__ == "__main__":
    main()
