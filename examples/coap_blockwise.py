#!/usr/bin/env python3
"""The paper's case study (Figure 5): Bug #8 in libcoap.

Shows, step by step, why the SEGV in ``coap_handle_request_put_block``
cannot be triggered under the default configuration and how CMFuzz's
configuration scheduling reaches it: an instance assigned the
``block-transfer``/``qblock`` group enables RFC 9177 Q-Block transfers,
and a final block arriving without block 0 dereferences the NULL
``lg_srcv->body_data`` at the ``give_app_data`` label.

    python examples/coap_blockwise.py
"""

from repro import ModelBuildConfig, quantify_relations
from repro.targets.coap.server import LibcoapTarget
from repro.targets.faults import SanitizerFault

_URI_STORE = b"\xb5store"


def _put_qblock(block_value, payload):
    header = bytes([0x40, 0x03, 0x7d, 0x01])
    return header + _URI_STORE + b"\x81" + block_value + b"\xff" + payload


def main():
    final_block_only = _put_qblock(b"\x12", b"D" * 8)  # num=1, more=0

    print("=== default configuration ===")
    target = LibcoapTarget()
    target.startup({})
    response = target.handle_packet(final_block_only)
    print("Q-Block1 PUT ->", "4.02 Bad Option (rejected)" if response[1] == 0x82
          else "unexpected %#x" % response[1])
    print("the vulnerable path is unreachable: qblock is off by default\n")

    print("=== CMFuzz discovers the relation ===")
    relation_model, _ = quantify_relations(
        "libcoap", config=ModelBuildConfig(max_combinations=8))
    weight = relation_model.weight("block-transfer", "qblock")
    print("relation weight (block-transfer, qblock): %.2f" % weight)
    print("-> the pair unlocks new startup paths, so Algorithm 2 schedules")
    print("   them onto the same instance with both enabled\n")

    print("=== non-default configuration (CMFuzz instance) ===")
    target = LibcoapTarget()
    target.startup({"block-transfer": True, "qblock": True})
    print("startup: Q-Block recovery timers armed")
    try:
        target.handle_packet(final_block_only)
        print("no crash?!")
    except SanitizerFault as fault:
        print("CRASH:", fault)
        print("(lg_srcv->body_data was NULL: block 0 never arrived, yet the")
        print(" final block jumped to give_app_data — Figure 5, line 20)\n")

    print("=== complete transfer on the same configuration is safe ===")
    target = LibcoapTarget()
    target.startup({"block-transfer": True, "qblock": True})
    target.handle_packet(_put_qblock(b"\x0a", b"C" * 16))  # num=0, more=1
    response = target.handle_packet(_put_qblock(b"\x12", b"D" * 8))
    print("two-block PUT -> %s" % ("2.04 Changed" if response[1] == 0x44 else "?"))
    print("stored body:", target._resources["store"])


if __name__ == "__main__":
    main()
