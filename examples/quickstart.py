#!/usr/bin/env python3
"""Quickstart: the whole CMFuzz pipeline on one protocol in ~30 lines.

Runs configuration model identification, relation quantification,
cohesive allocation and a short parallel campaign against the
Mosquitto-style MQTT broker, then prints what each stage produced.

    python examples/quickstart.py
"""

from repro.core.allocation import allocate
from repro.core.extraction import extract_entities
from repro.core.model import ConfigurationModel
from repro.core.relation import RelationQuantifier
from repro.harness.campaign import CampaignConfig, run_campaign
from repro.parallel.cmfuzz import CmFuzzMode
from repro.pits import pit_registry
from repro.targets.base import startup_probe_for
from repro.targets.mqtt.server import MosquittoTarget


def main():
    # 1. Identification: extract configuration items -> 4-tuple entities.
    entities = extract_entities(
        MosquittoTarget.config_sources(), MosquittoTarget.entity_overrides()
    )
    model = ConfigurationModel(entities)
    print("Identified %d configuration entities, e.g.:" % len(model))
    for entity in entities[:5]:
        print("  ", entity)

    # 2. Scheduling: quantify pairwise relations via startup coverage.
    quantifier = RelationQuantifier(startup_probe_for(MosquittoTarget),
                                    max_combinations=8)
    relation_model, report = quantifier.quantify(model)
    print("\nQuantified relations: %d edges from %d startup launches "
          "(%d conflicting combinations)"
          % (relation_model.graph.number_of_edges(), report.launches,
             report.failures))

    # 3. Cohesive grouping: one configuration group per fuzzing instance.
    allocation = allocate(relation_model, n_instances=4)
    for index, group in enumerate(allocation.groups):
        print("  instance %d <- %s" % (index, ", ".join(sorted(group))))
    print("cohesion (intra-group weight share): %.2f" % allocation.cohesion)

    # 4. Run a short parallel campaign (simulated 4 hours).
    result = run_campaign(
        MosquittoTarget,
        pit_registry()["mosquitto"](),
        CmFuzzMode(),
        CampaignConfig(n_instances=4, duration_hours=4.0, seed=42),
    )
    print("\nCampaign: %d branches covered, %d unique bugs, %d iterations"
          % (result.final_coverage, len(result.bugs), result.iterations))
    for bug in result.bugs.unique_bugs():
        print("  bug:", bug.kind.value, "in", bug.function)


if __name__ == "__main__":
    main()
