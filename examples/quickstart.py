#!/usr/bin/env python3
"""Quickstart: the whole CMFuzz pipeline on one protocol in ~30 lines.

Runs configuration model identification, relation quantification,
cohesive allocation and a short parallel campaign against the
Mosquitto-style MQTT broker, then prints what each stage produced.
Everything goes through the stable facade in :mod:`repro.api`.

    python examples/quickstart.py
"""

from repro import (
    CampaignConfig,
    ModelBuildConfig,
    allocate_groups,
    extract_model,
    quantify_relations,
    run_campaign,
)


def main():
    # 1. Identification: extract configuration items -> 4-tuple entities.
    model = extract_model("mosquitto")
    print("Identified %d configuration entities, e.g.:" % len(model))
    for entity in model.entities()[:5]:
        print("  ", entity)

    # 2. Scheduling: quantify pairwise relations via startup coverage.
    #    workers=2 fans the probes across processes; results are
    #    bit-identical to a serial run.
    relation_model, report = quantify_relations(
        "mosquitto", model, ModelBuildConfig(max_combinations=8, workers=2)
    )
    print("\nQuantified relations: %d edges from %d startup launches "
          "(%d conflicting combinations)"
          % (relation_model.graph.number_of_edges(), report.launches,
             report.failures))

    # 3. Cohesive grouping: one configuration group per fuzzing instance.
    allocation = allocate_groups(relation_model, n_instances=4)
    for index, group in enumerate(allocation.groups):
        print("  instance %d <- %s" % (index, ", ".join(sorted(group))))
    print("cohesion (intra-group weight share): %.2f" % allocation.cohesion)

    # 4. Run a short parallel campaign (simulated 4 hours).
    result = run_campaign(
        "mosquitto", mode="cmfuzz",
        config=CampaignConfig(n_instances=4, duration_hours=4.0, seed=42),
    )
    print("\nCampaign: %d branches covered, %d unique bugs, %d iterations"
          % (result.final_coverage, len(result.bugs), result.iterations))
    for bug in result.bugs.unique_bugs():
        print("  bug:", bug.kind.value, "in", bug.function)


if __name__ == "__main__":
    main()
