#!/usr/bin/env python3
"""Explore the configuration models of every registered protocol target.

For each target: run identification over its real configuration surface
(CLI help text, key-value / XML / custom config files), print the 4-tuple
entities, quantify pairwise relations and show the strongest ones, then
print the cohesive groups Algorithm 2 would hand to four instances.

    python examples/config_model_explorer.py [target ...]
"""

import sys

from repro import ModelBuildConfig, allocate_groups, extract_model, quantify_relations
from repro.targets import get_target, target_names


def explore(name, target_cls):
    print("=" * 72)
    print("%s (%s, port %d)" % (name, target_cls.PROTOCOL, target_cls.PORT))
    print("=" * 72)

    model = extract_model(name)
    mutable = model.mutable_entities()
    print("entities: %d total, %d mutable" % (len(model), len(mutable)))
    for entity in model.entities():
        marker = "*" if entity.mutable else " "
        print(" %s %-28s %-7s %s" % (marker, entity.name, entity.type.value,
                                     list(entity.values)[:4]))

    startup_bugs = []
    relation_model, report = quantify_relations(
        name, model, ModelBuildConfig(max_combinations=8),
        on_fault=startup_bugs.append,
    )
    for fault in {str(f) for f in startup_bugs}:
        print("  !! startup crash while probing:", fault)
    print("\nrelations: %d edges (%d launches, %d startup conflicts)"
          % (relation_model.graph.number_of_edges(), report.launches,
             report.failures))
    for a, b, weight in relation_model.edges_by_weight()[:8]:
        print("  %.2f  %s <-> %s" % (weight, a, b))

    allocation = allocate_groups(relation_model, 4)
    print("\nallocation to 4 instances (cohesion %.2f):" % allocation.cohesion)
    for index, group in enumerate(allocation.groups):
        print("  #%d: %s" % (index, ", ".join(sorted(group))))
    print()


def main():
    names = target_names()
    wanted = sys.argv[1:] or names
    for name in wanted:
        if name not in names:
            print("unknown target %r (choose from %s)" % (name, list(names)))
            continue
        explore(name, get_target(name).target_cls)


if __name__ == "__main__":
    main()
