#!/usr/bin/env python3
"""Bug hunt on the dnsmasq-style DNS server (the paper's best subject).

dnsmasq carries five of the paper's fourteen bugs, several gated on
non-default configuration. This example runs CMFuzz and Peach side by
side for a simulated day and shows which Table-II signatures each one
reaches, including the ``config_parse`` overflow CMFuzz finds during
relation quantification itself (a crash while probing the
``expand-hosts`` x ``domain`` value combinations).

    python examples/dns_bug_hunt.py
"""

from repro import CampaignConfig, run_campaign
from repro.harness.report import render_bug_table
from repro.targets.faults import TABLE_II_BUGS


def main():
    config = CampaignConfig(n_instances=4, duration_hours=24.0, seed=13)
    results = {}
    for mode_name in ("peach", "cmfuzz"):
        print("running %s on dnsmasq (simulated 24h)..." % mode_name)
        results[mode_name] = run_campaign("dnsmasq", mode=mode_name,
                                          config=config)

    table_dns = {sig for sig in TABLE_II_BUGS if sig[0] == "DNS"}
    for mode_name, result in results.items():
        found = {bug.signature for bug in result.bugs.unique_bugs()}
        print("\n%s: %d branches, %d/%d DNS Table-II bugs"
              % (mode_name, result.final_coverage, len(found & table_dns),
                 len(table_dns)))
        print(render_bug_table(result.bugs))

    cm_found = {b.signature for b in results["cmfuzz"].bugs.unique_bugs()}
    peach_found = {b.signature for b in results["peach"].bugs.unique_bugs()}
    only_cm = cm_found - peach_found
    if only_cm:
        print("\nfound by CMFuzz only (configuration-gated):")
        for signature in sorted(only_cm):
            print("  %s in %s" % (signature[1], signature[2]))


if __name__ == "__main__":
    main()
