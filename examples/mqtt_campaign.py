#!/usr/bin/env python3
"""Full three-fuzzer comparison on the MQTT broker (a Table-I cell).

Runs Peach-parallel, SPFuzz and CMFuzz for a simulated 24 hours with four
instances each, then prints the coverage comparison, the speedup metric
and an ASCII coverage-over-time chart (one Figure-4 panel).

    python examples/mqtt_campaign.py
"""

from repro import CampaignConfig, compare_modes
from repro.harness.report import format_speedup, improvement, render_figure4
from repro.harness.stats import speedup


def main():
    config = CampaignConfig(n_instances=4, duration_hours=24.0, seed=7)
    print("running peach, spfuzz and cmfuzz on mosquitto...")
    comparison = compare_modes("mosquitto", modes=("peach", "spfuzz", "cmfuzz"),
                               config=config)
    results = {name: runs[0] for name, runs in comparison.results.items()}

    cmfuzz, peach, spfuzz = results["cmfuzz"], results["peach"], results["spfuzz"]
    print("\n%-8s %10s %8s %8s" % ("fuzzer", "branches", "bugs", "iters"))
    for name, result in results.items():
        print("%-8s %10d %8d %8d"
              % (name, result.final_coverage, len(result.bugs), result.iterations))

    print("\nCMFuzz vs Peach : %s coverage, speedup %s" % (
        improvement(cmfuzz.final_coverage, peach.final_coverage),
        format_speedup(speedup(peach.coverage, cmfuzz.coverage))))
    print("CMFuzz vs SPFuzz: %s coverage, speedup %s" % (
        improvement(cmfuzz.final_coverage, spfuzz.final_coverage),
        format_speedup(speedup(spfuzz.coverage, cmfuzz.coverage))))

    print("\nCoverage over 24 simulated hours:")
    print(render_figure4(
        {name: result.coverage for name, result in results.items()},
        horizon=24 * 3600.0,
    ))

    print("\nBugs found by CMFuzz:")
    for bug in cmfuzz.bugs.unique_bugs():
        print("  [%5.1fh] %s in %s" % (bug.sim_time / 3600.0, bug.kind.value, bug.function))


if __name__ == "__main__":
    main()
