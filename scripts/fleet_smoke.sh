#!/usr/bin/env bash
# CI gate: the distributed control plane survives an agent murder and
# still produces the exact bytes of the local pool.
#
# Flow: start a coordinator and two worker agents sharing one result/
# checkpoint cache; submit a three-cell campaign grid with
# checkpointing; SIGKILL one agent mid-cell (its lease expires, the
# survivor steals the orphaned work and resumes it from the shared
# checkpoint); then run the identical grid on the in-process pool
# (`repro fleet submit --backend local --workers 2`) and byte-compare
# the two merged exports. Also exercises the status/roster surface so
# the observability endpoints stay honest.
#
# Knobs:
#   CMFUZZ_FLEET_PORT   coordinator port (default: 48712)
#   CMFUZZ_FLEET_HOURS  simulated hours per campaign (default: 48);
#                       must keep one cell running past the 2s kill
set -euo pipefail
cd "$(dirname "$0")/.."
export PYTHONPATH=src${PYTHONPATH:+:$PYTHONPATH}

PORT=${CMFUZZ_FLEET_PORT:-48712}
HOURS=${CMFUZZ_FLEET_HOURS:-48}
COORD="http://127.0.0.1:$PORT"

WORK=$(mktemp -d)
CLEANUP_PIDS=()
cleanup() {
    for pid in "${CLEANUP_PIDS[@]:-}"; do
        kill "$pid" 2>/dev/null || true
    done
    rm -rf "$WORK"
}
trap cleanup EXIT

SUBMIT=(fleet submit --target dnsmasq --mode cmfuzz --repetitions 3
        --instances 4 --hours "$HOURS" --seed 7 --checkpoint-every 1800)

echo "== coordinator on $COORD (tight lease TTL so the murder is cheap)"
python -m repro fleet coordinator --port "$PORT" \
    --lease-ttl 8 --heartbeat-interval 2 &
CLEANUP_PIDS+=("$!")

echo "== two agents over one shared cache"
CMFUZZ_CACHE_DIR="$WORK/cache-fleet" python -m repro fleet agent \
    --coordinator "$COORD" --name smoke-victim &
VICTIM=$!
CLEANUP_PIDS+=("$VICTIM")
CMFUZZ_CACHE_DIR="$WORK/cache-fleet" python -m repro fleet agent \
    --coordinator "$COORD" --name smoke-survivor &
CLEANUP_PIDS+=("$!")

echo "== submitting the grid"
python -m repro "${SUBMIT[@]}" --coordinator "$COORD" --timeout 900 \
    --label smoke --export "$WORK/fleet.json" &
SUBMIT_PID=$!
CLEANUP_PIDS+=("$SUBMIT_PID")

sleep 2
echo "== SIGKILLing one agent mid-cell"
kill -KILL "$VICTIM" 2>/dev/null || true

wait "$SUBMIT_PID"

echo "== roster and session status after the murder"
python -m repro fleet status --coordinator "$COORD"

echo "== identical grid on the in-process pool (workers=2)"
CMFUZZ_CACHE_DIR="$WORK/cache-local" python -m repro "${SUBMIT[@]}" \
    --backend local --workers 2 --export "$WORK/local.json"

echo "== byte-comparing the two exports"
if ! cmp "$WORK/fleet.json" "$WORK/local.json"; then
    echo "FAIL: fleet export differs from the local pool export" >&2
    exit 1
fi
echo "fleet smoke: OK (agent murdered, exports byte-identical)"
