#!/usr/bin/env python
"""Out-of-tree target plugin smoke: the discovery contract, end to end.

Authors a throwaway target module in a temporary directory — a package
nobody in-tree knows about — then drives the installed CLI in fresh
subprocesses to prove the plugin path works without a single repo edit:

1. without ``CMFUZZ_TARGET_MODULES`` the catalogue must NOT list the
   plugin (discovery is opt-in, not ambient);
2. with the variable set, ``python -m repro targets`` must list the
   plugin alongside every in-tree target;
3. ``python -m repro campaign --target plugin_smoke`` must run a short
   campaign against it and export positive coverage.

Exits non-zero with a ``FAIL:`` line on the first broken promise. CI's
``target-plugin-smoke`` job runs this; it works locally too::

    PYTHONPATH=src python scripts/target_plugin_smoke.py
"""

import json
import os
import subprocess
import sys
import tempfile
import textwrap

#: The throwaway target. Deliberately self-contained: its only imports
#: are the public plugin surface an out-of-tree author would use, and it
#: registers with a plain dict manifest (no target.json on disk).
PLUGIN_MODULE = "cmfuzz_smoke_plugin"
PLUGIN_TARGET = "plugin_smoke"
PLUGIN_SOURCE = textwrap.dedent("""
    from repro.core.extraction import ConfigSources
    from repro.fuzzing.datamodel import Blob, DataModel, Number
    from repro.fuzzing.statemodel import Action, State, StateModel
    from repro.targets.base import ProtocolTarget
    from repro.targets.registry import register_target

    CONFIG_FILE = "port=9901\\nshout=false\\n"


    class PluginSmokeTarget(ProtocolTarget):
        NAME = "plugin_smoke"
        PROTOCOL = "ECHO"
        PORT = 9901

        @classmethod
        def config_sources(cls):
            return ConfigSources(files=(("plugin_smoke.conf", CONFIG_FILE),))

        @classmethod
        def default_config(cls):
            return {"port": 9901, "shout": False}

        def _startup_impl(self):
            self.cov.hit("startup.complete")
            self.cov.branch("startup.shout", self.enabled("shout"))

        def reset_session(self):
            pass

        def handle_packet(self, data):
            self.require_started()
            if not data:
                self.cov.hit("recv.empty")
                return b""
            self.cov.hit("recv.op.%d" % (data[0] % 4))
            self.cov.branch("recv.long", len(data) > 8)
            if self.enabled("shout"):
                return data.upper()
            return data


    def state_model():
        return StateModel(
            "plugin-smoke", "start",
            [State("start", [Action("send", "Ping")])
             .add_transition("finish", 1.0),
             State("finish")],
            [DataModel("Ping", [Number("op", 8, default=1),
                                Blob("payload", default=b"hello")])])


    register_target("plugin_smoke", PluginSmokeTarget, state_model, {
        "name": "plugin_smoke",
        "protocol": "ECHO",
        "description": "Throwaway out-of-tree target for the CI plugin smoke.",
        "port": 9901,
        "config_surface": {"format": "key-value file", "keys": 2},
        "pit": "cmfuzz_smoke_plugin:state_model",
    })
""")


def fail(message):
    print("FAIL: %s" % message)
    raise SystemExit(1)


def run_cli(args, env, cwd):
    proc = subprocess.run(
        [sys.executable, "-m", "repro"] + args,
        env=env, cwd=cwd, capture_output=True, text=True)
    if proc.returncode != 0:
        fail("`repro %s` exited %d:\n%s\n%s"
             % (" ".join(args), proc.returncode, proc.stdout, proc.stderr))
    return proc.stdout


def in_tree_targets(env):
    """The in-tree catalogue, read in a subprocess WITHOUT the plugin
    discovery variable — the reference the plugin must not disturb."""
    proc = subprocess.run(
        [sys.executable, "-c",
         "from repro.targets import target_names; "
         "print('\\n'.join(target_names()))"],
        env=env, capture_output=True, text=True)
    if proc.returncode != 0:
        fail("could not read the in-tree catalogue:\n%s" % proc.stderr)
    return [line for line in proc.stdout.splitlines() if line]


def main():
    base_env = {k: v for k, v in os.environ.items()
                if k != "CMFUZZ_TARGET_MODULES"}
    if base_env.get("PYTHONPATH"):
        # Subprocesses run from a temp dir; keep relative entries (the
        # local `PYTHONPATH=src` invocation) pointing at the repo.
        base_env["PYTHONPATH"] = os.pathsep.join(
            os.path.abspath(p)
            for p in base_env["PYTHONPATH"].split(os.pathsep) if p)
    builtins = in_tree_targets(base_env)
    if PLUGIN_TARGET in builtins:
        fail("%r is already an in-tree target; the smoke needs a fresh name"
             % PLUGIN_TARGET)

    with tempfile.TemporaryDirectory(prefix="cmfuzz-plugin-") as tmpdir:
        with open(os.path.join(tmpdir, PLUGIN_MODULE + ".py"),
                  "w", encoding="utf-8") as handle:
            handle.write(PLUGIN_SOURCE)

        plugin_env = dict(base_env)
        plugin_env["PYTHONPATH"] = os.pathsep.join(
            p for p in (tmpdir, base_env.get("PYTHONPATH")) if p)
        plugin_env["CMFUZZ_TARGET_MODULES"] = PLUGIN_MODULE

        # 1. Discovery is opt-in: no env var, no plugin.
        table = run_cli(["targets"], base_env, tmpdir)
        if PLUGIN_TARGET in table:
            fail("catalogue lists %r without CMFUZZ_TARGET_MODULES set"
                 % PLUGIN_TARGET)

        # 2. With it, the table lists the plugin AND every in-tree target.
        table = run_cli(["targets"], plugin_env, tmpdir)
        for name in builtins + [PLUGIN_TARGET]:
            if "`%s`" % name not in table:
                fail("`repro targets` table is missing %r:\n%s"
                     % (name, table))
        print("catalogue lists %d in-tree targets + %r"
              % (len(builtins), PLUGIN_TARGET))

        # 3. A short campaign against the plugin completes and exports
        #    positive coverage.
        export_path = os.path.join(tmpdir, "plugin_campaign.json")
        run_cli(["campaign", "--target", PLUGIN_TARGET, "--mode", "cmfuzz",
                 "--instances", "2", "--hours", "1", "--seed", "3",
                 "--no-cache", "--export", export_path],
                plugin_env, tmpdir)
        with open(export_path, encoding="utf-8") as handle:
            export = json.load(handle)
        if not export:
            fail("campaign export is empty")
        record = export[0]
        if record.get("target") != PLUGIN_TARGET:
            fail("export records target %r, expected %r"
                 % (record.get("target"), PLUGIN_TARGET))
        coverage = record.get("final_coverage", 0)
        if not coverage or coverage <= 0:
            fail("campaign reported non-positive coverage %r" % coverage)
        print("campaign on %r exported final_coverage=%s"
              % (PLUGIN_TARGET, coverage))

    print("target plugin smoke: ok")
    return 0


if __name__ == "__main__":
    sys.exit(main())
