#!/usr/bin/env bash
# CI gate: a SIGTERM'd campaign resumed from its checkpoint must export
# byte-identical JSON to an uninterrupted run of the same seed.
#
# Flow: (1) run the reference campaign to completion; (2) run the same
# campaign with --checkpoint-every and SIGTERM it mid-run (expect exit
# 75, the EX_TEMPFAIL "rerun with --resume" code); (3) --resume it to
# completion; (4) byte-compare the two export files.
set -euo pipefail
cd "$(dirname "$0")/.."
export PYTHONPATH=src${PYTHONPATH:+:$PYTHONPATH}

WORK=$(mktemp -d)
trap 'rm -rf "$WORK"' EXIT

ARGS=(campaign --target dnsmasq --mode cmfuzz --instances 4 --hours 48
      --seed 7 --no-cache --checkpoint-every 1800)

echo "== uninterrupted reference run"
CMFUZZ_CACHE_DIR="$WORK/cache-ref" python -m repro "${ARGS[@]}" \
    --export "$WORK/reference.json"

echo "== checkpointing run, killed mid-campaign"
CMFUZZ_CACHE_DIR="$WORK/cache-resume" python -m repro "${ARGS[@]}" \
    --export "$WORK/resumed.json" &
PID=$!
sleep 2
kill -TERM "$PID" 2>/dev/null || true
set +e
wait "$PID"
CODE=$?
set -e
if [ "$CODE" -ne 75 ]; then
    echo "FAIL: expected interrupt exit code 75, got $CODE" >&2
    echo "(the campaign may have finished before the SIGTERM landed;" >&2
    echo " raise --hours or shorten the sleep)" >&2
    exit 1
fi

echo "== resumed run"
CMFUZZ_CACHE_DIR="$WORK/cache-resume" python -m repro "${ARGS[@]}" \
    --resume --export "$WORK/resumed.json"

echo "== byte-comparing exports"
if ! diff "$WORK/reference.json" "$WORK/resumed.json"; then
    echo "FAIL: resumed export differs from the uninterrupted run" >&2
    exit 1
fi
echo "resume determinism: OK (exports byte-identical)"
