#!/usr/bin/env bash
# CI gate: a SIGTERM'd campaign resumed from its checkpoint must export
# byte-identical JSON to an uninterrupted run of the same seed.
#
# Flow: (1) run the reference campaign to completion; (2) run the same
# campaign with --checkpoint-every and SIGTERM it mid-run (expect exit
# 75, the EX_TEMPFAIL "rerun with --resume" code); (3) --resume it to
# completion; (4) byte-compare the two export files. A second leg
# repeats (2)-(4) with the infrastructure fault plane switched on
# (--io-chaos-level): kill-and-resume under injected I/O faults must
# still reproduce the fault-free reference byte for byte.
#
# The scheduler under test and the campaign length are parameterized so
# CI can drive every registered mode through the same gate:
#   CMFUZZ_RD_MODE   mode name (default: cmfuzz)
#   CMFUZZ_RD_HOURS  simulated campaign hours (default: 48); raise it
#                    for fast modes so the campaign outlives the 2s
#                    SIGTERM delay of the kill leg.
set -euo pipefail
cd "$(dirname "$0")/.."
export PYTHONPATH=src${PYTHONPATH:+:$PYTHONPATH}

MODE=${CMFUZZ_RD_MODE:-cmfuzz}
HOURS=${CMFUZZ_RD_HOURS:-48}

WORK=$(mktemp -d)
trap 'rm -rf "$WORK"' EXIT

ARGS=(campaign --target dnsmasq --mode "$MODE" --instances 4
      --hours "$HOURS" --seed 7 --no-cache --checkpoint-every 1800)

# kill_and_resume <label> <cache-dir> <export-path> [extra flags...]
# Starts the campaign, SIGTERMs it after 2s (expects exit 75), then
# resumes it to completion into the same export path.
kill_and_resume() {
    local label=$1 cache=$2 export_path=$3
    shift 3

    echo "== $label: checkpointing run, killed mid-campaign"
    CMFUZZ_CACHE_DIR="$cache" python -m repro "${ARGS[@]}" "$@" \
        --export "$export_path" &
    local pid=$!
    sleep 2
    kill -TERM "$pid" 2>/dev/null || true
    set +e
    wait "$pid"
    local code=$?
    set -e
    if [ "$code" -ne 75 ]; then
        echo "FAIL: expected interrupt exit code 75, got $code" >&2
        echo "(the campaign may have finished before the SIGTERM landed;" >&2
        echo " raise --hours or shorten the sleep)" >&2
        exit 1
    fi

    echo "== $label: resumed run"
    CMFUZZ_CACHE_DIR="$cache" python -m repro "${ARGS[@]}" "$@" \
        --resume --export "$export_path"
}

echo "== uninterrupted reference run"
CMFUZZ_CACHE_DIR="$WORK/cache-ref" python -m repro "${ARGS[@]}" \
    --export "$WORK/reference.json"

kill_and_resume "plain" "$WORK/cache-resume" "$WORK/resumed.json"

echo "== byte-comparing exports"
if ! diff "$WORK/reference.json" "$WORK/resumed.json"; then
    echo "FAIL: resumed export differs from the uninterrupted run" >&2
    exit 1
fi
echo "resume determinism: OK (exports byte-identical)"

kill_and_resume "io-storm" "$WORK/cache-storm" "$WORK/stormed.json" \
    --io-chaos-level 0.3 --io-chaos-seed 7

echo "== byte-comparing the under-faults export against the reference"
if ! diff "$WORK/reference.json" "$WORK/stormed.json"; then
    echo "FAIL: resume under I/O faults differs from the fault-free run" >&2
    exit 1
fi
echo "resume determinism under faults: OK (exports byte-identical)"
