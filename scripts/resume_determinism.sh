#!/usr/bin/env bash
# CI gate: a killed-mid-run campaign, resumed from its checkpoint, must
# export byte-identical JSON to an uninterrupted run of the same seed.
#
# Local backend (default) flow: (1) run the reference campaign to
# completion; (2) run the same campaign with --checkpoint-every and
# SIGTERM it mid-run (expect exit 75, the EX_TEMPFAIL "rerun with
# --resume" code); (3) --resume it to completion; (4) byte-compare the
# two export files. A second leg repeats (2)-(4) with the
# infrastructure fault plane switched on (--io-chaos-level):
# kill-and-resume under injected I/O faults must still reproduce the
# fault-free reference byte for byte.
#
# Fleet backend (CMFUZZ_RD_BACKEND=fleet) flow: the same gate through
# the distributed control plane. The reference is the identical grid on
# the in-process pool (`repro fleet submit --backend local`); the kill
# leg starts a coordinator plus one worker agent, submits the grid with
# checkpointing, SIGKILLs the agent mid-cell, starts a replacement
# agent over the same shared cache (so the re-leased cell resumes from
# its checkpoint), and byte-compares the merged fleet export against
# the local reference. The io-storm leg repeats it with the fault
# plane on inside every cell.
#
# The scheduler under test and the campaign length are parameterized so
# CI can drive every registered mode and both backends through the gate:
#   CMFUZZ_RD_MODE     mode name (default: cmfuzz)
#   CMFUZZ_RD_HOURS    simulated campaign hours (default: 48); raise it
#                      for fast modes so the campaign outlives the 2s
#                      kill delay
#   CMFUZZ_RD_BACKEND  'local' (default) or 'fleet'
set -euo pipefail
cd "$(dirname "$0")/.."
export PYTHONPATH=src${PYTHONPATH:+:$PYTHONPATH}

MODE=${CMFUZZ_RD_MODE:-cmfuzz}
HOURS=${CMFUZZ_RD_HOURS:-48}
BACKEND=${CMFUZZ_RD_BACKEND:-local}

WORK=$(mktemp -d)
CLEANUP_PIDS=()
cleanup() {
    for pid in "${CLEANUP_PIDS[@]:-}"; do
        kill "$pid" 2>/dev/null || true
    done
    rm -rf "$WORK"
}
trap cleanup EXIT

# ---------------------------------------------------------------------------
# Local backend: SIGTERM the campaign process, --resume it.
# ---------------------------------------------------------------------------

ARGS=(campaign --target dnsmasq --mode "$MODE" --instances 4
      --hours "$HOURS" --seed 7 --no-cache --checkpoint-every 1800)

# kill_and_resume <label> <cache-dir> <export-path> [extra flags...]
# Starts the campaign, SIGTERMs it after 2s (expects exit 75), then
# resumes it to completion into the same export path.
kill_and_resume() {
    local label=$1 cache=$2 export_path=$3
    shift 3

    echo "== $label: checkpointing run, killed mid-campaign"
    CMFUZZ_CACHE_DIR="$cache" python -m repro "${ARGS[@]}" "$@" \
        --export "$export_path" &
    local pid=$!
    sleep 2
    kill -TERM "$pid" 2>/dev/null || true
    set +e
    wait "$pid"
    local code=$?
    set -e
    if [ "$code" -ne 75 ]; then
        echo "FAIL: expected interrupt exit code 75, got $code" >&2
        echo "(the campaign may have finished before the SIGTERM landed;" >&2
        echo " raise --hours or shorten the sleep)" >&2
        exit 1
    fi

    echo "== $label: resumed run"
    CMFUZZ_CACHE_DIR="$cache" python -m repro "${ARGS[@]}" "$@" \
        --resume --export "$export_path"
}

run_local_gate() {
    echo "== uninterrupted reference run"
    CMFUZZ_CACHE_DIR="$WORK/cache-ref" python -m repro "${ARGS[@]}" \
        --export "$WORK/reference.json"

    kill_and_resume "plain" "$WORK/cache-resume" "$WORK/resumed.json"

    echo "== byte-comparing exports"
    if ! diff "$WORK/reference.json" "$WORK/resumed.json"; then
        echo "FAIL: resumed export differs from the uninterrupted run" >&2
        exit 1
    fi
    echo "resume determinism: OK (exports byte-identical)"

    kill_and_resume "io-storm" "$WORK/cache-storm" "$WORK/stormed.json" \
        --io-chaos-level 0.3 --io-chaos-seed 7

    echo "== byte-comparing the under-faults export against the reference"
    if ! diff "$WORK/reference.json" "$WORK/stormed.json"; then
        echo "FAIL: resume under I/O faults differs from the fault-free run" >&2
        exit 1
    fi
    echo "resume determinism under faults: OK (exports byte-identical)"
}

# ---------------------------------------------------------------------------
# Fleet backend: SIGKILL the worker agent, a replacement resumes.
# ---------------------------------------------------------------------------

FLEET_PORT=${CMFUZZ_RD_FLEET_PORT:-48731}
COORD="http://127.0.0.1:$FLEET_PORT"
SUBMIT=(fleet submit --target dnsmasq --mode "$MODE" --instances 4
        --hours "$HOURS" --seed 7 --checkpoint-every 1800)

# fleet_kill_and_resume <label> <cache-dir> <export-path> [extra flags...]
# Submits the grid against a coordinator with one agent, SIGKILLs the
# agent mid-cell, starts a replacement over the same cache and waits
# for the merged export.
fleet_kill_and_resume() {
    local label=$1 cache=$2 export_path=$3
    shift 3

    echo "== $label: fleet run, agent SIGKILLed mid-cell"
    CMFUZZ_CACHE_DIR="$cache" python -m repro fleet agent \
        --coordinator "$COORD" --name victim &
    local victim=$!
    CLEANUP_PIDS+=("$victim")

    python -m repro "${SUBMIT[@]}" "$@" --coordinator "$COORD" \
        --timeout 600 --label "$label" --export "$export_path" &
    local submit=$!
    CLEANUP_PIDS+=("$submit")

    sleep 2
    kill -KILL "$victim" 2>/dev/null || true

    echo "== $label: replacement agent resumes the orphaned lease"
    CMFUZZ_CACHE_DIR="$cache" python -m repro fleet agent \
        --coordinator "$COORD" --name replacement &
    local replacement=$!
    CLEANUP_PIDS+=("$replacement")

    wait "$submit"
    kill "$replacement" 2>/dev/null || true
}

run_fleet_gate() {
    echo "== fleet reference: identical grid on the in-process pool"
    CMFUZZ_CACHE_DIR="$WORK/cache-ref" python -m repro "${SUBMIT[@]}" \
        --backend local --workers 2 --export "$WORK/reference.json"

    echo "== starting coordinator on $COORD"
    # A tight lease TTL so the murdered agent's lease expires fast.
    python -m repro fleet coordinator --port "$FLEET_PORT" \
        --lease-ttl 8 --heartbeat-interval 2 &
    CLEANUP_PIDS+=("$!")

    fleet_kill_and_resume "fleet-plain" "$WORK/cache-fleet" \
        "$WORK/fleet.json"

    echo "== byte-comparing the fleet export against the local reference"
    if ! diff "$WORK/reference.json" "$WORK/fleet.json"; then
        echo "FAIL: fleet export differs from the local pool run" >&2
        exit 1
    fi
    echo "fleet resume determinism: OK (exports byte-identical)"

    fleet_kill_and_resume "fleet-io-storm" "$WORK/cache-fleet-storm" \
        "$WORK/fleet-stormed.json" --io-chaos-level 0.3 --io-chaos-seed 7

    echo "== byte-comparing the under-faults fleet export"
    if ! diff "$WORK/reference.json" "$WORK/fleet-stormed.json"; then
        echo "FAIL: fleet resume under I/O faults differs" >&2
        exit 1
    fi
    echo "fleet resume determinism under faults: OK (exports byte-identical)"
}

case "$BACKEND" in
    local) run_local_gate ;;
    fleet) run_fleet_gate ;;
    *)
        echo "FAIL: unknown CMFUZZ_RD_BACKEND '$BACKEND' (local|fleet)" >&2
        exit 2
        ;;
esac
