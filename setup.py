"""Legacy setup shim.

Kept so ``pip install -e .`` works in offline environments whose
setuptools cannot build PEP 660 editable wheels (no ``wheel`` package):
pip falls back to the classic ``setup.py develop`` path. All metadata
lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
